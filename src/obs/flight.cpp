#include "pil/obs/flight.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

#include "pil/obs/json.hpp"
#include "pil/util/error.hpp"

#ifdef _WIN32
#include <io.h>
#define PIL_FLIGHT_WRITE _write
#else
#include <unistd.h>
#define PIL_FLIGHT_WRITE ::write
#endif

namespace pil::obs {

namespace {

void write_event(JsonWriter& w, const JournalEvent& e, JournalNamer namer) {
  w.begin_object();
  w.kv("seq", static_cast<unsigned long long>(e.seq));
  w.kv("ts_us", static_cast<double>(e.ts_ns) * 1e-3);
  w.kv("tid", static_cast<long long>(e.tid));
  if (e.session != 0) w.kv("session", static_cast<long long>(e.session));
  if (e.flow != 0) w.kv("flow", static_cast<long long>(e.flow));
  if (e.tile >= 0) w.kv("tile", static_cast<long long>(e.tile));
  w.kv("kind", to_string(e.kind));
  if (e.a != 0) {
    w.kv("a", static_cast<long long>(e.a));
    if (namer)
      if (const char* name = namer(e.kind, 'a', e.a)) w.kv("method", name);
  }
  // b carries enum payloads whose zero value is meaningful for these
  // kinds (deadline scope, FaultSite::kTileSolve) -- always emit it.
  if (e.b != 0 || e.kind == JournalEventKind::kDeadlineExpired ||
      e.kind == JournalEventKind::kFaultInjected) {
    w.kv("b", static_cast<long long>(e.b));
    if (namer)
      if (const char* name = namer(e.kind, 'b', e.b)) w.kv("detail", name);
  }
  if (e.c != 0) w.kv("c", static_cast<unsigned long long>(e.c));
  if (e.v != 0.0) w.kv("v", e.v);
  // Service events carry the request trace id in c; mirror it as the
  // 16-hex-char form clients see on the wire so a dump greps by trace_id.
  if (e.c != 0 && (e.kind == JournalEventKind::kServiceRequest ||
                   e.kind == JournalEventKind::kServiceResponse ||
                   e.kind == JournalEventKind::kStuckWorker)) {
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(e.c));
    w.kv("trace", hex);
  }
  w.end_object();
}

}  // namespace

void write_flight_json(std::ostream& os, const FlightWriteOptions& options) {
  JournalSnapshot snap = journal_snapshot();
  const JournalNamer namer = journal_namer();
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const JournalEvent& x, const JournalEvent& y) {
                     return x.seq < y.seq;
                   });

  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.kv("schema", "pil.flight.v1");
  w.kv("cause", options.cause.empty() ? "requested"
                                      : std::string_view(options.cause));
  if (!options.detail.empty()) w.kv("detail", options.detail);
  w.kv("sequence", static_cast<unsigned long long>(journal_sequence()));
  w.kv("dropped_events", static_cast<unsigned long long>(snap.dropped));
  w.key("threads");
  w.begin_array();
  for (const auto& [tid, name] : journal_thread_names()) {
    w.begin_object();
    w.kv("tid", static_cast<long long>(tid));
    w.kv("name", name);
    w.end_object();
  }
  w.end_array();
  w.key("events");
  w.begin_array();
  for (const JournalEvent& e : snap.events) write_event(w, e, namer);
  w.end_array();
  w.end_object();
  os << '\n';
}

bool write_flight_file(const std::string& path,
                       const FlightWriteOptions& options) noexcept {
  try {
    std::ofstream os(path);
    if (!os) return false;
    write_flight_json(os, options);
    return os.good();
  } catch (...) {
    return false;
  }
}

namespace {

/// State threaded through journal_visit_rings in the crash path. Plain
/// struct + function pointer keeps the handler free of allocation.
struct SignalDumpState {
  int fd = -1;
  bool first = true;
  JournalNamer namer = nullptr;
};

void signal_put(int fd, const char* s, int n) {
  if (n > 0) (void)!PIL_FLIGHT_WRITE(fd, s, static_cast<size_t>(n));
}

template <typename... Args>
void signal_putf(int fd, const char* fmt, Args... args) {
  char buf[512];
  int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  if (n >= static_cast<int>(sizeof(buf))) n = sizeof(buf) - 1;
  signal_put(fd, buf, n);
}

void signal_dump_ring(void* ctx, std::uint64_t head,
                      const JournalEvent* slots) {
  auto& state = *static_cast<SignalDumpState*>(ctx);
  const std::uint64_t n =
      head < kJournalRingCapacity ? head : kJournalRingCapacity;
  for (std::uint64_t i = head - n; i < head; ++i) {
    const JournalEvent& e = slots[i & (kJournalRingCapacity - 1)];
    signal_putf(state.fd, "%s{\"seq\":%" PRIu64 ",\"ts_us\":%.3f,\"tid\":%u",
                state.first ? "" : ",", e.seq,
                static_cast<double>(e.ts_ns) * 1e-3, e.tid);
    state.first = false;
    if (e.session != 0) signal_putf(state.fd, ",\"session\":%u", e.session);
    if (e.flow != 0) signal_putf(state.fd, ",\"flow\":%u", e.flow);
    if (e.tile >= 0) signal_putf(state.fd, ",\"tile\":%d", e.tile);
    signal_putf(state.fd, ",\"kind\":\"%s\"", to_string(e.kind));
    if (e.a != 0) {
      signal_putf(state.fd, ",\"a\":%u", static_cast<unsigned>(e.a));
      const char* name =
          state.namer != nullptr ? state.namer(e.kind, 'a', e.a) : nullptr;
      if (name != nullptr) signal_putf(state.fd, ",\"method\":\"%s\"", name);
    }
    if (e.b != 0 || e.kind == JournalEventKind::kDeadlineExpired ||
        e.kind == JournalEventKind::kFaultInjected) {
      signal_putf(state.fd, ",\"b\":%u", e.b);
      const char* name =
          state.namer != nullptr ? state.namer(e.kind, 'b', e.b) : nullptr;
      if (name != nullptr) signal_putf(state.fd, ",\"detail\":\"%s\"", name);
    }
    if (e.c != 0) signal_putf(state.fd, ",\"c\":%" PRIu64, e.c);
    if (e.v != 0.0) signal_putf(state.fd, ",\"v\":%.9g", e.v);
    if (e.c != 0 && (e.kind == JournalEventKind::kServiceRequest ||
                     e.kind == JournalEventKind::kServiceResponse ||
                     e.kind == JournalEventKind::kStuckWorker))
      signal_putf(state.fd, ",\"trace\":\"%016llx\"",
                  static_cast<unsigned long long>(e.c));
    signal_put(state.fd, "}", 1);
  }
}

}  // namespace

void write_flight_signal_safe(int fd, const char* cause) noexcept {
  // Fixed-size stack buffers and write(2) only: this runs from fatal-
  // signal handlers. Other threads may still be recording, so a torn
  // trailing slot is possible; the output stays parseable regardless.
  SignalDumpState state;
  state.fd = fd;
  state.namer = journal_namer();
  signal_putf(fd,
              "{\"schema\":\"pil.flight.v1\",\"cause\":\"%s\",\"sequence\":%"
              PRIu64 ",\"dropped_events\":0,\"threads\":[],\"events\":[",
              cause != nullptr ? cause : "signal", journal_sequence());
  journal_visit_rings(&signal_dump_ring, &state);
  signal_put(fd, "]}\n", 3);
}

namespace {

double num_or(const JsonValue& obj, std::string_view key, double fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->num_v : fallback;
}

std::string str_or(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->str_v : std::string();
}

}  // namespace

FlightDump parse_flight_json(std::string_view text) {
  const JsonValue doc = parse_json(text);
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->str_v != "pil.flight.v1")
    throw Error("not a pil.flight.v1 document");
  FlightDump dump;
  dump.cause = str_or(doc, "cause");
  dump.detail = str_or(doc, "detail");
  dump.dropped = static_cast<std::uint64_t>(num_or(doc, "dropped_events", 0));
  if (const JsonValue* threads = doc.find("threads");
      threads != nullptr && threads->is_array()) {
    for (const JsonValue& t : threads->items) {
      if (!t.is_object()) continue;
      FlightThread ft;
      ft.tid = static_cast<std::uint32_t>(num_or(t, "tid", 0));
      ft.name = str_or(t, "name");
      ft.dropped = static_cast<std::uint64_t>(num_or(t, "dropped", 0));
      dump.threads.push_back(std::move(ft));
    }
  }
  if (const JsonValue* events = doc.find("events");
      events != nullptr && events->is_array()) {
    dump.events.reserve(events->items.size());
    for (const JsonValue& ev : events->items) {
      if (!ev.is_object()) continue;
      FlightEvent fe;
      fe.seq = static_cast<std::uint64_t>(num_or(ev, "seq", 0));
      fe.ts_us = num_or(ev, "ts_us", 0.0);
      fe.tid = static_cast<std::uint32_t>(num_or(ev, "tid", 0));
      fe.session = static_cast<std::uint32_t>(num_or(ev, "session", 0));
      fe.flow = static_cast<std::uint32_t>(num_or(ev, "flow", 0));
      fe.tile = static_cast<std::int32_t>(num_or(ev, "tile", -1));
      fe.kind = str_or(ev, "kind");
      fe.method = str_or(ev, "method");
      fe.detail = str_or(ev, "detail");
      fe.trace = str_or(ev, "trace");
      fe.a = static_cast<std::uint64_t>(num_or(ev, "a", 0));
      fe.b = static_cast<std::uint64_t>(num_or(ev, "b", 0));
      fe.c = static_cast<std::uint64_t>(num_or(ev, "c", 0));
      fe.v = num_or(ev, "v", 0.0);
      dump.events.push_back(std::move(fe));
    }
  }
  std::stable_sort(dump.events.begin(), dump.events.end(),
                   [](const FlightEvent& x, const FlightEvent& y) {
                     return x.seq < y.seq;
                   });
  return dump;
}

FlightDump read_flight_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open flight dump: " + path);
  std::ostringstream text;
  text << is.rdbuf();
  return parse_flight_json(text.str());
}

FlightDump merge_flight_dumps(const std::vector<FlightDump>& dumps) {
  FlightDump merged;
  for (const FlightDump& d : dumps) {
    if (merged.cause.empty()) merged.cause = d.cause;
    if (merged.detail.empty()) merged.detail = d.detail;
    merged.dropped += d.dropped;
    merged.threads.insert(merged.threads.end(), d.threads.begin(),
                          d.threads.end());
    merged.events.insert(merged.events.end(), d.events.begin(),
                         d.events.end());
  }
  std::stable_sort(merged.events.begin(), merged.events.end(),
                   [](const FlightEvent& x, const FlightEvent& y) {
                     return x.seq < y.seq;
                   });
  return merged;
}

void write_flight_json(std::ostream& os, const FlightDump& dump) {
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.kv("schema", "pil.flight.v1");
  w.kv("cause", dump.cause.empty() ? "requested"
                                   : std::string_view(dump.cause));
  if (!dump.detail.empty()) w.kv("detail", dump.detail);
  const std::uint64_t sequence =
      dump.events.empty() ? 0 : dump.events.back().seq;
  w.kv("sequence", static_cast<unsigned long long>(sequence));
  w.kv("dropped_events", static_cast<unsigned long long>(dump.dropped));
  w.key("threads");
  w.begin_array();
  for (const FlightThread& t : dump.threads) {
    w.begin_object();
    w.kv("tid", static_cast<long long>(t.tid));
    w.kv("name", t.name);
    if (t.dropped != 0)
      w.kv("dropped", static_cast<unsigned long long>(t.dropped));
    w.end_object();
  }
  w.end_array();
  w.key("events");
  w.begin_array();
  for (const FlightEvent& e : dump.events) {
    w.begin_object();
    w.kv("seq", static_cast<unsigned long long>(e.seq));
    w.kv("ts_us", e.ts_us);
    w.kv("tid", static_cast<long long>(e.tid));
    if (e.session != 0) w.kv("session", static_cast<long long>(e.session));
    if (e.flow != 0) w.kv("flow", static_cast<long long>(e.flow));
    if (e.tile >= 0) w.kv("tile", static_cast<long long>(e.tile));
    w.kv("kind", e.kind);
    if (e.a != 0) {
      w.kv("a", static_cast<long long>(e.a));
      if (!e.method.empty()) w.kv("method", e.method);
    }
    if (e.b != 0 || e.kind == "deadline_expired" ||
        e.kind == "fault_injected") {
      w.kv("b", static_cast<long long>(e.b));
      if (!e.detail.empty()) w.kv("detail", e.detail);
    }
    if (e.c != 0) w.kv("c", static_cast<unsigned long long>(e.c));
    if (e.v != 0.0) w.kv("v", e.v);
    if (!e.trace.empty()) w.kv("trace", e.trace);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

std::vector<TileChain> tile_chains(const FlightDump& dump) {
  std::vector<TileChain> chains;
  std::map<std::pair<std::uint32_t, std::int32_t>, std::size_t> index;
  for (std::size_t i = 0; i < dump.events.size(); ++i) {
    const FlightEvent& e = dump.events[i];
    if (e.tile < 0) continue;
    const auto key = std::make_pair(e.flow, e.tile);
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, chains.size()).first;
      TileChain chain;
      chain.tile = e.tile;
      chain.flow = e.flow;
      chain.session = e.session;
      chains.push_back(std::move(chain));
    }
    TileChain& chain = chains[it->second];
    chain.events.push_back(i);
    auto label = [&e]() {
      return !e.detail.empty() ? e.detail
                               : (!e.kind.empty() ? e.kind : std::string());
    };
    if (e.kind == "tile_begin") {
      if (chain.method.empty()) chain.method = e.method;
      chain.required = std::max(chain.required, static_cast<long long>(e.c));
    } else if (e.kind == "tile_end") {
      chain.placed = static_cast<long long>(e.c);
      chain.seconds += e.v;
      if (!chain.failed)
        chain.failed = chain.required > 0 && chain.placed == 0 &&
                       !chain.cause.empty();
    } else if (e.kind == "ladder_step") {
      chain.degraded = true;
      if (chain.cause.empty()) chain.cause = label();
    } else if (e.kind == "tile_failure") {
      chain.degraded = true;
      if (chain.cause.empty()) chain.cause = label();
    } else if (e.kind == "deadline_expired" || e.kind == "fault_injected") {
      if (chain.cause.empty()) chain.cause = label();
    }
  }
  for (TileChain& chain : chains) {
    if (chain.required > 0 && chain.placed == 0 && chain.degraded)
      chain.failed = true;
    if (chain.failed) chain.degraded = false;
  }
  return chains;
}

}  // namespace pil::obs
