#include "pil/obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "pil/obs/json.hpp"

namespace pil::obs {

namespace {

void atomic_add_double(std::atomic<double>& a, double delta) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bucket_index(double v) noexcept {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;
  int exp = 0;
  std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5, 1)
  return std::clamp(exp + 31, 0, kNumBuckets - 1);
}

double Histogram::bucket_lower(int b) noexcept {
  if (b <= 0) return 0.0;
  return std::ldexp(1.0, b - 32);
}

void Histogram::observe(double v) noexcept {
  // First observation seeds min/max: count 0 -> 1 transition is racy across
  // threads, so seed both toward the value and let CAS settle the rest.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  } else {
    atomic_min_double(min_, v);
    atomic_max_double(max_, v);
  }
  atomic_add_double(sum_, v);
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (int b = 0; b < kNumBuckets; ++b)
    s.buckets[static_cast<std::size_t>(b)] =
        buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const long long target =
      std::max<long long>(1, static_cast<long long>(std::ceil(q * count)));
  long long seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets[static_cast<std::size_t>(b)];
    if (seen >= target) {
      const double lo = std::max(bucket_lower(b), min);
      const double hi = std::min(
          b + 1 < kNumBuckets ? bucket_lower(b + 1) : max, max);
      if (lo <= 0.0 || hi <= lo) return hi;
      return std::sqrt(lo * hi);  // geometric midpoint of the bucket
    }
  }
  return max;
}

Histogram::Percentiles Histogram::Snapshot::percentiles() const {
  Percentiles p;
  p.p50 = quantile(0.50);
  p.p90 = quantile(0.90);
  p.p99 = quantile(0.99);
  return p;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_.try_emplace(std::string(name)).first->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c.value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g.value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    s.histograms.emplace_back(name, h.snapshot());
  return s;
}

void MetricsSnapshot::write_json(JsonWriter& w, bool include_buckets) const {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : counters) w.kv(name, v);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : gauges) w.kv(name, v);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name);
    w.begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.kv("min", h.count > 0 ? h.min : 0.0);
    w.kv("max", h.count > 0 ? h.max : 0.0);
    w.kv("mean", h.mean());
    const Histogram::Percentiles p = h.percentiles();
    w.kv("p50", p.p50);
    w.kv("p90", p.p90);
    w.kv("p99", p.p99);
    if (include_buckets) {
      w.key("buckets");
      w.begin_array();
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        const long long n = h.buckets[static_cast<std::size_t>(b)];
        if (n == 0) continue;
        w.begin_array();
        w.value(Histogram::bucket_lower(b));
        w.value(n);
        w.end_array();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

namespace {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::string labeled(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out(base);
  if (labels.size() == 0) return out;
  out.push_back('{');
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out.append(k);
    out.push_back('=');
    // Backslash-escape the composite-name separators so a value containing
    // ',', '=', or '}' (a fault spec, a file path, ...) survives the split
    // back into label dimensions in the OpenMetrics writer.
    for (char ch : v) {
      if (ch == '\\' || ch == ',' || ch == '=' || ch == '}')
        out.push_back('\\');
      out.push_back(ch);
    }
  }
  out.push_back('}');
  return out;
}

}  // namespace pil::obs
