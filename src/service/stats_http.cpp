#include "pil/service/stats_http.hpp"

#include <netinet/in.h>
#include <sys/select.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "pil/util/error.hpp"

namespace pil::service {

namespace {

/// send() with SIGPIPE suppressed; plain write() for non-sockets.
bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) w = ::write(fd, data, n);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

void set_io_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - tv.tv_sec) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
  }
  return "OK";
}

/// Read until the end of the request head ("\r\n\r\n") or the cap; the
/// request line is all this server ever looks at.
std::string read_request_head(int fd) {
  std::string head;
  char buf[1024];
  while (head.size() < 16 * 1024) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    head.append(buf, static_cast<std::size_t>(r));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos)
      break;
  }
  return head;
}

void write_response(int fd, const HttpContent& content) {
  std::string head = "HTTP/1.0 " + std::to_string(content.status) + " " +
                     status_text(content.status) +
                     "\r\nContent-Type: " + content.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(content.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (write_all(fd, head.data(), head.size()))
    write_all(fd, content.body.data(), content.body.size());
}

}  // namespace

struct StatsHttpServer::Impl {
  Config config;
  HttpHandler handler;
  int unix_fd = -1;
  int tcp_fd = -1;
  int bound_tcp_port = -1;
  bool started = false;
  bool stopping = false;
  std::thread acceptor;

  void serve_one(int fd) {
    set_io_timeout(fd, 5.0);
    const std::string head = read_request_head(fd);
    // Request line: METHOD SP PATH SP VERSION. Anything else is a 400.
    const std::size_t sp1 = head.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : head.find(' ', sp1 + 1);
    HttpContent content;
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      content.status = 400;
      content.body = "malformed request\n";
    } else if (head.substr(0, sp1) != "GET") {
      content.status = 405;
      content.body = "GET only\n";
    } else {
      std::string path = head.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::size_t q = path.find('?');  // query strings are ignored
      if (q != std::string::npos) path.resize(q);
      try {
        content = handler(path);
      } catch (const std::exception& e) {
        content = HttpContent{};
        content.status = 500;
        content.body = std::string(e.what()) + "\n";
      }
    }
    write_response(fd, content);
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }

  /// Sequential accept: one scrape at a time. Scrapers poll at seconds
  /// granularity and handlers only snapshot counters, so a connection
  /// backlog here would mean something much worse is already wrong.
  void accept_loop() {
    while (true) {
      int fd = -1;
      if (unix_fd >= 0 && tcp_fd >= 0) {
        fd_set rfds;
        FD_ZERO(&rfds);
        FD_SET(unix_fd, &rfds);
        FD_SET(tcp_fd, &rfds);
        const int nfds = (unix_fd > tcp_fd ? unix_fd : tcp_fd) + 1;
        const int rc = ::select(nfds, &rfds, nullptr, nullptr, nullptr);
        if (rc < 0) {
          if (errno == EINTR) continue;
          return;
        }
        const int lfd = FD_ISSET(unix_fd, &rfds) ? unix_fd : tcp_fd;
        fd = ::accept(lfd, nullptr, nullptr);
      } else {
        const int lfd = unix_fd >= 0 ? unix_fd : tcp_fd;
        fd = lfd >= 0 ? ::accept(lfd, nullptr, nullptr) : -1;
      }
      if (fd < 0) {
        if (stopping) return;
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return;  // listener closed
      }
      serve_one(fd);
    }
  }
};

StatsHttpServer::StatsHttpServer(const Config& config, HttpHandler handler)
    : impl_(new Impl) {
  PIL_REQUIRE(config.tcp_port >= 0 || !config.unix_socket.empty(),
              "stats endpoint needs a tcp port or a unix socket path");
  PIL_REQUIRE(handler != nullptr, "stats endpoint needs a handler");
  impl_->config = config;
  impl_->handler = std::move(handler);
}

StatsHttpServer::~StatsHttpServer() { stop(); }

void StatsHttpServer::start() {
  Impl& im = *impl_;
  PIL_REQUIRE(!im.started, "stats endpoint already started");
  if (!im.config.unix_socket.empty()) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    PIL_REQUIRE(fd >= 0, "socket(AF_UNIX) failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    PIL_REQUIRE(im.config.unix_socket.size() < sizeof(addr.sun_path),
                "unix socket path too long: " + im.config.unix_socket);
    std::strncpy(addr.sun_path, im.config.unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(im.config.unix_socket.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw Error("cannot listen on unix socket " + im.config.unix_socket +
                  ": " + why);
    }
    im.unix_fd = fd;
  }
  if (im.config.tcp_port >= 0) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    PIL_REQUIRE(fd >= 0, "socket(AF_INET) failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(im.config.tcp_port));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw Error("cannot listen on 127.0.0.1:" +
                  std::to_string(im.config.tcp_port) + ": " + why);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
    im.bound_tcp_port = ntohs(bound.sin_port);
    im.tcp_fd = fd;
  }
  im.started = true;
  im.acceptor = std::thread([&im] { im.accept_loop(); });
}

void StatsHttpServer::stop() {
  Impl& im = *impl_;
  if (!im.started || im.stopping) return;
  im.stopping = true;
  if (im.unix_fd >= 0) ::shutdown(im.unix_fd, SHUT_RDWR);
  if (im.tcp_fd >= 0) ::shutdown(im.tcp_fd, SHUT_RDWR);
  if (im.unix_fd >= 0) {
    ::close(im.unix_fd);
    im.unix_fd = -1;
  }
  if (im.tcp_fd >= 0) {
    ::close(im.tcp_fd);
    im.tcp_fd = -1;
  }
  if (im.acceptor.joinable()) im.acceptor.join();
  if (!im.config.unix_socket.empty())
    ::unlink(im.config.unix_socket.c_str());
}

int StatsHttpServer::tcp_port() const { return impl_->bound_tcp_port; }

std::string http_get(const std::string& path, int port,
                     const std::string& unix_socket, int* status,
                     double timeout_seconds) {
  PIL_REQUIRE(port >= 0 || !unix_socket.empty(),
              "http_get: give a port or a unix socket");
  int fd = -1;
  if (!unix_socket.empty()) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    PIL_REQUIRE(fd >= 0, "socket(AF_UNIX) failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    PIL_REQUIRE(unix_socket.size() < sizeof(addr.sun_path),
                "unix socket path too long: " + unix_socket);
    std::strncpy(addr.sun_path, unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw Error("cannot connect to " + unix_socket + ": " + why);
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    PIL_REQUIRE(fd >= 0, "socket(AF_INET) failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw Error("cannot connect to 127.0.0.1:" + std::to_string(port) +
                  ": " + why);
    }
  }
  set_io_timeout(fd, timeout_seconds);

  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  if (!write_all(fd, request.data(), request.size())) {
    ::close(fd);
    throw Error("http_get: request write failed");
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0 && errno == EINTR) continue;
    if (r < 0) {
      ::close(fd);
      throw Error("http_get: read failed (timeout?)");
    }
    if (r == 0) break;
    raw.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);

  // "HTTP/1.x NNN ...\r\n...\r\n\r\n<body>"
  PIL_REQUIRE(raw.compare(0, 5, "HTTP/") == 0,
              "http_get: not an HTTP response");
  const std::size_t sp = raw.find(' ');
  PIL_REQUIRE(sp != std::string::npos && raw.size() > sp + 3,
              "http_get: malformed status line");
  if (status != nullptr) *status = std::stoi(raw.substr(sp + 1, 3));
  std::size_t body = raw.find("\r\n\r\n");
  std::size_t skip = 4;
  if (body == std::string::npos) {
    body = raw.find("\n\n");
    skip = 2;
  }
  PIL_REQUIRE(body != std::string::npos, "http_get: no header terminator");
  return raw.substr(body + skip);
}

}  // namespace pil::service
