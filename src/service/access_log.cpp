#include "pil/service/access_log.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>

#include "pil/util/error.hpp"

namespace pil::service {

AccessLog::AccessLog(std::string path, std::size_t max_bytes)
    : path_(std::move(path)), max_bytes_(max_bytes) {
  file_ = std::fopen(path_.c_str(), "a");
  PIL_REQUIRE(file_ != nullptr, "cannot open access log " + path_ + ": " +
                                    std::strerror(errno));
  struct stat st{};
  if (::stat(path_.c_str(), &st) == 0)
    bytes_ = static_cast<std::size_t>(st.st_size);
}

AccessLog::~AccessLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
}

void AccessLog::write(const std::string& json_line) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  if (max_bytes_ > 0 && bytes_ + json_line.size() + 1 > max_bytes_ &&
      bytes_ > 0)
    rotate_locked();
  if (std::fwrite(json_line.data(), 1, json_line.size(), file_) ==
      json_line.size())
    std::fputc('\n', file_);
  // Flush per line: the log's consumers (the scrape smoke, a postmortem
  // tail) read it while the daemon is live, and line rates are bounded by
  // solve rates, not I/O.
  std::fflush(file_);
  bytes_ += json_line.size() + 1;
}

void AccessLog::rotate_locked() noexcept {
  std::fclose(file_);
  file_ = nullptr;
  const std::string old = path_ + ".1";
  std::remove(old.c_str());
  std::rename(path_.c_str(), old.c_str());
  file_ = std::fopen(path_.c_str(), "a");
  bytes_ = 0;
}

}  // namespace pil::service
