#include "pil/service/protocol.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <sstream>

#include "pil/layout/pld_io.hpp"
#include "pil/obs/json.hpp"
#include "pil/util/error.hpp"

namespace pil::service {

namespace {

using obs::JsonValue;
using obs::JsonWriter;

// --------------------------------------------------------------- hashing ----

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a64(std::string_view bytes,
                      std::uint64_t h = kFnvOffset) noexcept {
  for (unsigned char ch : bytes) {
    h ^= ch;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a64_double(double v, std::uint64_t h) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    h ^= (bits >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

std::string hex_u64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t parse_hex_u64(std::string_view s, const char* what) {
  PIL_REQUIRE(!s.empty() && s.size() <= 16, std::string(what) +
                                                ": expected a hex u64");
  std::uint64_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else throw Error(std::string(what) + ": expected a hex u64");
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return v;
}

// ----------------------------------------------------------- JSON lookup ----

double get_num(const JsonValue& obj, std::string_view key, double def) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return def;
  PIL_REQUIRE(v->is_number(), std::string(key) + ": expected a number");
  return v->num_v;
}

long long get_int(const JsonValue& obj, std::string_view key,
                  long long def) {
  return static_cast<long long>(get_num(obj, key, static_cast<double>(def)));
}

bool get_bool(const JsonValue& obj, std::string_view key, bool def) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return def;
  PIL_REQUIRE(v->type == JsonValue::Type::kBool,
              std::string(key) + ": expected a bool");
  return v->bool_v;
}

std::string get_str(const JsonValue& obj, std::string_view key,
                    std::string def = {}) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return def;
  PIL_REQUIRE(v->is_string(), std::string(key) + ": expected a string");
  return v->str_v;
}

// ------------------------------------------------------------ enum wires ----

const char* target_engine_wire(pilfill::TargetEngine e) {
  switch (e) {
    case pilfill::TargetEngine::kMonteCarlo: return "mc";
    case pilfill::TargetEngine::kMinVarLp: return "minvar_lp";
    case pilfill::TargetEngine::kMinFillLp: return "minfill_lp";
  }
  return "mc";
}

pilfill::TargetEngine target_engine_from_wire(std::string_view s) {
  if (s == "mc") return pilfill::TargetEngine::kMonteCarlo;
  if (s == "minvar_lp") return pilfill::TargetEngine::kMinVarLp;
  if (s == "minfill_lp") return pilfill::TargetEngine::kMinFillLp;
  throw Error("unknown target_engine \"" + std::string(s) + "\"");
}

const char* slack_mode_wire(fill::SlackMode m) {
  switch (m) {
    case fill::SlackMode::kI: return "i";
    case fill::SlackMode::kII: return "ii";
    case fill::SlackMode::kIII: return "iii";
  }
  return "iii";
}

fill::SlackMode slack_mode_from_wire(std::string_view s) {
  if (s == "i") return fill::SlackMode::kI;
  if (s == "ii") return fill::SlackMode::kII;
  if (s == "iii") return fill::SlackMode::kIII;
  throw Error("unknown solver_mode \"" + std::string(s) + "\"");
}

const char* objective_wire(pilfill::Objective o) {
  return o == pilfill::Objective::kWeighted ? "weighted" : "non_weighted";
}

pilfill::Objective objective_from_wire(std::string_view s) {
  if (s == "non_weighted") return pilfill::Objective::kNonWeighted;
  if (s == "weighted") return pilfill::Objective::kWeighted;
  throw Error("unknown objective \"" + std::string(s) + "\"");
}

const char* style_wire(cap::FillStyle s) {
  return s == cap::FillStyle::kGrounded ? "grounded" : "floating";
}

cap::FillStyle style_from_wire(std::string_view s) {
  if (s == "floating") return cap::FillStyle::kFloating;
  if (s == "grounded") return cap::FillStyle::kGrounded;
  throw Error("unknown style \"" + std::string(s) + "\"");
}

const char* edit_kind_wire(pilfill::WireEdit::Kind k) {
  switch (k) {
    case pilfill::WireEdit::Kind::kAddSegment: return "add_segment";
    case pilfill::WireEdit::Kind::kRemoveSegment: return "remove_segment";
    case pilfill::WireEdit::Kind::kMoveSegment: return "move_segment";
  }
  return "add_segment";
}

pilfill::WireEdit::Kind edit_kind_from_wire(std::string_view s) {
  if (s == "add_segment") return pilfill::WireEdit::Kind::kAddSegment;
  if (s == "remove_segment") return pilfill::WireEdit::Kind::kRemoveSegment;
  if (s == "move_segment") return pilfill::WireEdit::Kind::kMoveSegment;
  throw Error("unknown edit kind \"" + std::string(s) + "\"");
}

// --------------------------------------------------------- config encode ----

/// The model half, in a fixed key order -- this exact byte sequence (as
/// produced by encode, compact mode) is what model_fingerprint hashes, so
/// key order is part of the fingerprint's definition.
void encode_model(JsonWriter& w, const pilfill::ModelConfig& m) {
  w.kv("layer", static_cast<long long>(m.layer));
  w.kv("window_um", m.window_um);
  w.kv("r", m.r);
  w.kv("feature_um", m.rules.feature_um);
  w.kv("gap_um", m.rules.gap_um);
  w.kv("buffer_um", m.rules.buffer_um);
  w.kv("target_engine", target_engine_wire(m.target_engine));
  w.kv("solver_mode", slack_mode_wire(m.solver_mode));
  w.kv("lower_target", m.target.lower_target);
  w.kv("upper_bound", m.target.upper_bound);
  w.kv("target_seed", static_cast<unsigned long long>(m.target.seed));
  w.kv("objective", objective_wire(m.objective));
  w.kv("seed", static_cast<unsigned long long>(m.seed));
  w.kv("ilp_max_nodes", m.ilp.max_nodes);
  w.kv("style", style_wire(m.style));
  w.kv("switch_factor", m.switch_factor);
  if (!m.required_per_tile.empty()) {
    w.key("required_per_tile");
    w.begin_array();
    for (int n : m.required_per_tile) w.value(n);
    w.end_array();
  }
  if (!m.net_criticality.empty()) {
    w.key("net_criticality");
    w.begin_array();
    for (double c : m.net_criticality) w.value(c);
    w.end_array();
  }
}

void encode_policy(JsonWriter& w, const pilfill::SolvePolicy& p) {
  w.kv("threads", p.threads);
  w.kv("tile_deadline_seconds", p.tile_deadline_seconds);
  w.kv("flow_deadline_seconds", p.flow_deadline_seconds);
  w.kv("degrade_on_failure", p.degrade_on_failure);
  w.kv("fail_fast", p.fail_fast);
  if (!p.fault_spec.empty()) w.kv("fault_spec", p.fault_spec);
}

/// Config decoding rejects unknown keys: a config field the server does not
/// understand would silently change what problem gets solved, which is the
/// one place "ignore unknown fields" is the wrong default.
void decode_config_into(const JsonValue& obj, pilfill::FlowConfig& cfg) {
  PIL_REQUIRE(obj.is_object(), "config: expected an object");
  for (const auto& [key, val] : obj.members) {
    if (key == "layer") {
      cfg.layer = static_cast<layout::LayerId>(val.num_v);
    } else if (key == "window_um") {
      cfg.window_um = val.num_v;
    } else if (key == "r") {
      cfg.r = static_cast<int>(val.num_v);
    } else if (key == "feature_um") {
      cfg.rules.feature_um = val.num_v;
    } else if (key == "gap_um") {
      cfg.rules.gap_um = val.num_v;
    } else if (key == "buffer_um") {
      cfg.rules.buffer_um = val.num_v;
    } else if (key == "target_engine") {
      cfg.target_engine = target_engine_from_wire(val.str_v);
    } else if (key == "solver_mode") {
      cfg.solver_mode = slack_mode_from_wire(val.str_v);
    } else if (key == "lower_target") {
      cfg.target.lower_target = val.num_v;
    } else if (key == "upper_bound") {
      cfg.target.upper_bound = val.num_v;
    } else if (key == "target_seed") {
      cfg.target.seed = static_cast<std::uint64_t>(val.num_v);
    } else if (key == "objective") {
      cfg.objective = objective_from_wire(val.str_v);
    } else if (key == "seed") {
      cfg.seed = static_cast<std::uint64_t>(val.num_v);
    } else if (key == "ilp_max_nodes") {
      cfg.ilp.max_nodes = static_cast<int>(val.num_v);
    } else if (key == "style") {
      cfg.style = style_from_wire(val.str_v);
    } else if (key == "switch_factor") {
      cfg.switch_factor = val.num_v;
    } else if (key == "required_per_tile") {
      PIL_REQUIRE(val.is_array(), "config.required_per_tile: expected array");
      cfg.required_per_tile.clear();
      for (const auto& item : val.items)
        cfg.required_per_tile.push_back(static_cast<int>(item.num_v));
    } else if (key == "net_criticality") {
      PIL_REQUIRE(val.is_array(), "config.net_criticality: expected array");
      cfg.net_criticality.clear();
      for (const auto& item : val.items)
        cfg.net_criticality.push_back(item.num_v);
    } else if (key == "threads") {
      cfg.threads = static_cast<int>(val.num_v);
    } else if (key == "tile_deadline_seconds") {
      cfg.tile_deadline_seconds = val.num_v;
    } else if (key == "flow_deadline_seconds") {
      cfg.flow_deadline_seconds = val.num_v;
    } else if (key == "degrade_on_failure") {
      cfg.degrade_on_failure = val.bool_v;
    } else if (key == "fail_fast") {
      cfg.fail_fast = val.bool_v;
    } else if (key == "fault_spec") {
      cfg.fault_spec = val.str_v;
    } else {
      throw Error("unknown config key \"" + key + "\"");
    }
  }
}

// ------------------------------------------------------------ edit codec ----

void encode_edit(JsonWriter& w, const pilfill::WireEdit& e) {
  w.begin_object();
  w.kv("kind", edit_kind_wire(e.kind));
  switch (e.kind) {
    case pilfill::WireEdit::Kind::kAddSegment:
      w.kv("net", static_cast<long long>(e.net));
      w.kv("ax", e.a.x);
      w.kv("ay", e.a.y);
      w.kv("bx", e.b.x);
      w.kv("by", e.b.y);
      w.kv("width_um", e.width_um);
      break;
    case pilfill::WireEdit::Kind::kRemoveSegment:
      w.kv("segment", static_cast<long long>(e.segment));
      break;
    case pilfill::WireEdit::Kind::kMoveSegment:
      w.kv("segment", static_cast<long long>(e.segment));
      w.kv("dx", e.dx);
      w.kv("dy", e.dy);
      break;
  }
  w.end_object();
}

pilfill::WireEdit decode_edit(const JsonValue& obj) {
  PIL_REQUIRE(obj.is_object(), "edit: expected an object");
  pilfill::WireEdit e;
  e.kind = edit_kind_from_wire(get_str(obj, "kind", "add_segment"));
  e.net = static_cast<layout::NetId>(get_int(obj, "net", layout::kInvalidNet));
  e.a.x = get_num(obj, "ax", 0.0);
  e.a.y = get_num(obj, "ay", 0.0);
  e.b.x = get_num(obj, "bx", 0.0);
  e.b.y = get_num(obj, "by", 0.0);
  e.width_um = get_num(obj, "width_um", 0.0);
  e.segment = static_cast<layout::SegmentId>(
      get_int(obj, "segment", layout::kInvalidSegment));
  e.dx = get_num(obj, "dx", 0.0);
  e.dy = get_num(obj, "dy", 0.0);
  return e;
}

// --------------------------------------------------------- method summary ----

void encode_method_summary(JsonWriter& w, const MethodSummary& s) {
  w.begin_object();
  w.kv("requested", method_wire_name(s.requested));
  w.kv("served", method_wire_name(s.served));
  w.kv("placed", s.placed);
  w.kv("shortfall", s.shortfall);
  w.kv("features", s.features);
  w.kv("delay_ps", s.delay_ps);
  w.kv("weighted_delay_ps", s.weighted_delay_ps);
  w.kv("exact_sink_delay_ps", s.exact_sink_delay_ps);
  w.kv("tiles_node_limit", s.tiles_node_limit);
  w.kv("tiles_degraded", s.tiles_degraded);
  w.kv("tiles_failed", s.tiles_failed);
  w.kv("solve_seconds", s.solve_seconds);
  w.kv("density_min", s.density_min);
  w.kv("density_max", s.density_max);
  w.kv("density_mean", s.density_mean);
  w.kv("placement_hash", hex_u64(s.placement_hash));
  if (!s.placement.empty()) {
    w.key("placement");
    w.begin_array();
    for (const geom::Rect& r : s.placement) {
      w.begin_array();
      w.value(r.xlo);
      w.value(r.ylo);
      w.value(r.xhi);
      w.value(r.yhi);
      w.end_array();
    }
    w.end_array();
  }
  w.end_object();
}

MethodSummary decode_method_summary(const JsonValue& obj) {
  PIL_REQUIRE(obj.is_object(), "methods[]: expected an object");
  MethodSummary s;
  s.requested = method_from_wire(get_str(obj, "requested", "normal"));
  s.served = method_from_wire(get_str(obj, "served", "normal"));
  s.placed = get_int(obj, "placed", 0);
  s.shortfall = get_int(obj, "shortfall", 0);
  s.features = get_int(obj, "features", 0);
  s.delay_ps = get_num(obj, "delay_ps", 0.0);
  s.weighted_delay_ps = get_num(obj, "weighted_delay_ps", 0.0);
  s.exact_sink_delay_ps = get_num(obj, "exact_sink_delay_ps", 0.0);
  s.tiles_node_limit = get_int(obj, "tiles_node_limit", 0);
  s.tiles_degraded = get_int(obj, "tiles_degraded", 0);
  s.tiles_failed = get_int(obj, "tiles_failed", 0);
  s.solve_seconds = get_num(obj, "solve_seconds", 0.0);
  s.density_min = get_num(obj, "density_min", 0.0);
  s.density_max = get_num(obj, "density_max", 0.0);
  s.density_mean = get_num(obj, "density_mean", 0.0);
  s.placement_hash =
      parse_hex_u64(get_str(obj, "placement_hash", "0"), "placement_hash");
  if (const JsonValue* arr = obj.find("placement"); arr != nullptr) {
    PIL_REQUIRE(arr->is_array(), "placement: expected an array");
    s.placement.reserve(arr->items.size());
    for (const JsonValue& item : arr->items) {
      PIL_REQUIRE(item.is_array() && item.items.size() == 4,
                  "placement[]: expected [xlo,ylo,xhi,yhi]");
      s.placement.emplace_back(item.items[0].num_v, item.items[1].num_v,
                               item.items[2].num_v, item.items[3].num_v);
    }
  }
  return s;
}

}  // namespace

// ------------------------------------------------------------ operations ----

const char* to_string(Op op) {
  switch (op) {
    case Op::kOpenSession: return "open_session";
    case Op::kApplyEdit: return "apply_edit";
    case Op::kSolve: return "solve";
    case Op::kStats: return "stats";
    case Op::kShutdown: return "shutdown";
  }
  return "stats";
}

Op op_from_name(std::string_view name) {
  if (name == "open_session") return Op::kOpenSession;
  if (name == "apply_edit") return Op::kApplyEdit;
  if (name == "solve") return Op::kSolve;
  if (name == "stats") return Op::kStats;
  if (name == "shutdown") return Op::kShutdown;
  throw Error("unknown op \"" + std::string(name) + "\"");
}

const char* method_wire_name(pilfill::Method m) {
  switch (m) {
    case pilfill::Method::kNormal: return "normal";
    case pilfill::Method::kIlp1: return "ilp1";
    case pilfill::Method::kIlp2: return "ilp2";
    case pilfill::Method::kGreedy: return "greedy";
    case pilfill::Method::kConvex: return "convex";
  }
  return "normal";
}

pilfill::Method method_from_wire(std::string_view name) {
  if (name == "normal") return pilfill::Method::kNormal;
  if (name == "ilp1") return pilfill::Method::kIlp1;
  if (name == "ilp2") return pilfill::Method::kIlp2;
  if (name == "greedy") return pilfill::Method::kGreedy;
  if (name == "convex") return pilfill::Method::kConvex;
  throw Error("unknown method \"" + std::string(name) + "\"");
}

layout::SyntheticLayoutConfig GenSpec::to_config() const {
  layout::SyntheticLayoutConfig cfg;
  cfg.die_um = die_um;
  cfg.num_nets = num_nets;
  cfg.seed = seed;
  cfg.num_macros = num_macros;
  return cfg;
}

// -------------------------------------------------------------- requests ----

std::string encode_request(const Request& request) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.kv("schema", kRequestSchema);
  w.kv("op", to_string(request.op));
  w.kv("id", static_cast<unsigned long long>(request.id));
  if (request.trace_id != 0) w.kv("trace_id", hex_u64(request.trace_id));
  if (request.request_id != 0)
    w.kv("request_id", hex_u64(request.request_id));
  if (!request.layout_pld.empty()) w.kv("layout_pld", request.layout_pld);
  if (!request.layout_path.empty()) w.kv("layout_path", request.layout_path);
  if (request.gen.has_value()) {
    w.key("gen");
    w.begin_object();
    w.kv("die_um", request.gen->die_um);
    w.kv("num_nets", request.gen->num_nets);
    w.kv("seed", static_cast<unsigned long long>(request.gen->seed));
    w.kv("num_macros", request.gen->num_macros);
    w.end_object();
  }
  if (request.op == Op::kOpenSession) {
    w.key("config");
    w.begin_object();
    encode_model(w, request.config.model());
    encode_policy(w, request.config.policy());
    w.end_object();
  }
  if (!request.session_key.empty()) w.kv("session_key", request.session_key);
  if (!request.session.empty()) w.kv("session", request.session);
  if (request.op == Op::kApplyEdit) {
    w.key("edit");
    encode_edit(w, request.edit);
  }
  if (!request.methods.empty()) {
    w.key("methods");
    w.begin_array();
    for (pilfill::Method m : request.methods) w.value(method_wire_name(m));
    w.end_array();
  }
  if (request.deadline_ms > 0) w.kv("deadline_ms", request.deadline_ms);
  if (request.tile_deadline_ms > 0)
    w.kv("tile_deadline_ms", request.tile_deadline_ms);
  if (request.no_degrade) w.kv("no_degrade", true);
  if (request.include_placement) w.kv("include_placement", true);
  w.end_object();
  return os.str();
}

Request decode_request(std::string_view json) {
  const JsonValue doc = obs::parse_json(json);
  PIL_REQUIRE(doc.is_object(), "request: expected a JSON object");
  const std::string schema = get_str(doc, "schema");
  PIL_REQUIRE(schema == kRequestSchema,
              "unsupported request schema \"" + schema + "\" (this endpoint "
              "speaks " + std::string(kRequestSchema) + ")");
  Request r;
  r.op = op_from_name(get_str(doc, "op"));
  r.id = static_cast<std::uint64_t>(get_num(doc, "id", 0.0));
  r.trace_id = parse_hex_u64(get_str(doc, "trace_id", "0"), "trace_id");
  r.request_id =
      parse_hex_u64(get_str(doc, "request_id", "0"), "request_id");
  r.layout_pld = get_str(doc, "layout_pld");
  r.layout_path = get_str(doc, "layout_path");
  if (const JsonValue* gen = doc.find("gen"); gen != nullptr) {
    PIL_REQUIRE(gen->is_object(), "gen: expected an object");
    GenSpec spec;
    spec.die_um = get_num(*gen, "die_um", spec.die_um);
    spec.num_nets = static_cast<int>(get_int(*gen, "num_nets", spec.num_nets));
    spec.seed = static_cast<std::uint64_t>(
        get_num(*gen, "seed", static_cast<double>(spec.seed)));
    spec.num_macros =
        static_cast<int>(get_int(*gen, "num_macros", spec.num_macros));
    r.gen = spec;
  }
  if (const JsonValue* cfg = doc.find("config"); cfg != nullptr)
    decode_config_into(*cfg, r.config);
  r.session_key = get_str(doc, "session_key");
  r.session = get_str(doc, "session");
  if (const JsonValue* edit = doc.find("edit"); edit != nullptr)
    r.edit = decode_edit(*edit);
  if (const JsonValue* methods = doc.find("methods"); methods != nullptr) {
    PIL_REQUIRE(methods->is_array(), "methods: expected an array");
    for (const JsonValue& item : methods->items) {
      PIL_REQUIRE(item.is_string(), "methods[]: expected a string");
      r.methods.push_back(method_from_wire(item.str_v));
    }
  }
  r.deadline_ms = get_num(doc, "deadline_ms", 0.0);
  r.tile_deadline_ms = get_num(doc, "tile_deadline_ms", 0.0);
  r.no_degrade = get_bool(doc, "no_degrade", false);
  r.include_placement = get_bool(doc, "include_placement", false);
  return r;
}

// ------------------------------------------------------------- responses ----

std::string encode_response(const Response& response) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.kv("schema", kResponseSchema);
  w.kv("op", to_string(response.op));
  w.kv("id", static_cast<unsigned long long>(response.id));
  w.kv("ok", response.ok);
  if (response.trace_id != 0) w.kv("trace_id", hex_u64(response.trace_id));
  if (response.shed) w.kv("shed", true);
  if (response.degraded) w.kv("degraded", true);
  if (response.edit_seq > 0) w.kv("edit_seq", response.edit_seq);
  if (response.deduped) w.kv("deduped", true);
  if (response.retryable) w.kv("retryable", true);
  if (!response.error.empty()) w.kv("error", response.error);
  if (!response.error_field.empty())
    w.kv("error_field", response.error_field);
  if (!response.session.empty()) w.kv("session", response.session);
  if (response.op == Op::kOpenSession && response.ok) {
    w.kv("reused", response.reused);
    w.kv("layout_hash", hex_u64(response.layout_hash));
    w.kv("tiles", response.tiles);
    w.kv("prep_seconds", response.prep_seconds);
  }
  if (response.edit.has_value()) {
    w.key("edit");
    w.begin_object();
    w.kv("segment", response.edit->segment);
    w.kv("columns_rescanned", response.edit->columns_rescanned);
    w.kv("tiles_retargeted", response.edit->tiles_retargeted);
    w.kv("tiles_dirty", response.edit->tiles_dirty);
    w.kv("seconds", response.edit->seconds);
    w.end_object();
  }
  if (!response.methods.empty()) {
    w.key("methods");
    w.begin_array();
    for (const MethodSummary& s : response.methods)
      encode_method_summary(w, s);
    w.end_array();
  }
  if (response.stages.has_value()) {
    w.key("stages");
    w.begin_object();
    w.kv("queue_ms", response.stages->queue_ms);
    w.kv("admission_ms", response.stages->admission_ms);
    w.kv("session_ms", response.stages->session_ms);
    w.kv("solve_ms", response.stages->solve_ms);
    w.kv("write_ms", response.stages->write_ms);
    w.end_object();
  }
  if (!response.stats_json.empty()) {
    w.key("stats");
    w.raw(response.stats_json);
  }
  w.end_object();
  return os.str();
}

Response decode_response(std::string_view json) {
  const JsonValue doc = obs::parse_json(json);
  PIL_REQUIRE(doc.is_object(), "response: expected a JSON object");
  const std::string schema = get_str(doc, "schema");
  PIL_REQUIRE(schema == kResponseSchema,
              "unsupported response schema \"" + schema + "\"");
  Response r;
  r.op = op_from_name(get_str(doc, "op", "stats"));
  r.id = static_cast<std::uint64_t>(get_num(doc, "id", 0.0));
  r.ok = get_bool(doc, "ok", false);
  r.trace_id = parse_hex_u64(get_str(doc, "trace_id", "0"), "trace_id");
  r.shed = get_bool(doc, "shed", false);
  r.degraded = get_bool(doc, "degraded", false);
  r.edit_seq = get_int(doc, "edit_seq", 0);
  r.deduped = get_bool(doc, "deduped", false);
  r.retryable = get_bool(doc, "retryable", false);
  r.error = get_str(doc, "error");
  r.error_field = get_str(doc, "error_field");
  r.session = get_str(doc, "session");
  r.reused = get_bool(doc, "reused", false);
  r.layout_hash = parse_hex_u64(get_str(doc, "layout_hash", "0"),
                                "layout_hash");
  r.tiles = static_cast<int>(get_int(doc, "tiles", 0));
  r.prep_seconds = get_num(doc, "prep_seconds", 0.0);
  if (const JsonValue* edit = doc.find("edit"); edit != nullptr) {
    PIL_REQUIRE(edit->is_object(), "edit: expected an object");
    EditSummary s;
    s.segment = get_int(*edit, "segment", -1);
    s.columns_rescanned =
        static_cast<int>(get_int(*edit, "columns_rescanned", 0));
    s.tiles_retargeted =
        static_cast<int>(get_int(*edit, "tiles_retargeted", 0));
    s.tiles_dirty = static_cast<int>(get_int(*edit, "tiles_dirty", 0));
    s.seconds = get_num(*edit, "seconds", 0.0);
    r.edit = s;
  }
  if (const JsonValue* methods = doc.find("methods"); methods != nullptr) {
    PIL_REQUIRE(methods->is_array(), "methods: expected an array");
    for (const JsonValue& item : methods->items)
      r.methods.push_back(decode_method_summary(item));
  }
  if (const JsonValue* stages = doc.find("stages"); stages != nullptr) {
    PIL_REQUIRE(stages->is_object(), "stages: expected an object");
    StageBreakdown b;
    b.queue_ms = get_num(*stages, "queue_ms", 0.0);
    b.admission_ms = get_num(*stages, "admission_ms", 0.0);
    b.session_ms = get_num(*stages, "session_ms", 0.0);
    b.solve_ms = get_num(*stages, "solve_ms", 0.0);
    b.write_ms = get_num(*stages, "write_ms", 0.0);
    r.stages = b;
  }
  if (const JsonValue* stats = doc.find("stats"); stats != nullptr) {
    // Re-serialize verbatim-ish: keep the raw object for the caller.
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    std::function<void(const JsonValue&)> emit = [&](const JsonValue& v) {
      switch (v.type) {
        case JsonValue::Type::kNull: w.null(); break;
        case JsonValue::Type::kBool: w.value(v.bool_v); break;
        case JsonValue::Type::kNumber: w.value(v.num_v); break;
        case JsonValue::Type::kString: w.value(std::string_view(v.str_v));
          break;
        case JsonValue::Type::kArray:
          w.begin_array();
          for (const auto& item : v.items) emit(item);
          w.end_array();
          break;
        case JsonValue::Type::kObject:
          w.begin_object();
          for (const auto& [k, val] : v.members) {
            w.key(k);
            emit(val);
          }
          w.end_object();
          break;
      }
    };
    emit(*stats);
    r.stats_json = os.str();
  }
  return r;
}

// ----------------------------------------------------------- fingerprints ----

std::uint64_t layout_fingerprint(const layout::Layout& layout) {
  std::ostringstream os;
  layout::write_pld(layout, os);
  return fnv1a64(os.str());
}

std::uint64_t model_fingerprint(const pilfill::ModelConfig& model) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  encode_model(w, model);
  w.end_object();
  return fnv1a64(os.str());
}

std::uint64_t placement_fingerprint(const std::vector<geom::Rect>& rects) {
  std::uint64_t h = kFnvOffset;
  for (const geom::Rect& r : rects) {
    h = fnv1a64_double(r.xlo, h);
    h = fnv1a64_double(r.ylo, h);
    h = fnv1a64_double(r.xhi, h);
    h = fnv1a64_double(r.yhi, h);
  }
  return h;
}

MethodSummary summarize_method(const pilfill::MethodResult& mr,
                               pilfill::Method requested,
                               bool include_placement) {
  MethodSummary s;
  s.requested = requested;
  s.served = mr.method;
  s.placed = mr.placed;
  s.shortfall = mr.shortfall;
  s.features = mr.impact.features;
  s.delay_ps = mr.impact.delay_ps;
  s.weighted_delay_ps = mr.impact.weighted_delay_ps;
  s.exact_sink_delay_ps = mr.impact.exact_sink_delay_ps;
  s.tiles_node_limit = mr.tiles_node_limit;
  s.tiles_degraded = mr.tiles_degraded;
  s.tiles_failed = mr.tiles_failed;
  s.solve_seconds = mr.solve_seconds;
  s.density_min = mr.density_after.min_density;
  s.density_max = mr.density_after.max_density;
  s.density_mean = mr.density_after.mean_density;
  s.placement_hash = placement_fingerprint(mr.placement.features);
  if (include_placement) s.placement = mr.placement.features;
  return s;
}

// ---------------------------------------------------------------- framing ----

const char* to_string(FrameReadStatus status) {
  switch (status) {
    case FrameReadStatus::kOk: return "ok";
    case FrameReadStatus::kClosed: return "closed";
    case FrameReadStatus::kTruncated: return "truncated";
    case FrameReadStatus::kOversize: return "oversize";
    case FrameReadStatus::kError: return "error";
    case FrameReadStatus::kTimeout: return "timeout";
  }
  return "error";
}

namespace {

/// send() with SIGPIPE suppressed when `fd` is a socket; plain write()
/// otherwise (pipes in tests). Retries EINTR.
ssize_t write_some(int fd, const char* data, std::size_t n) {
  for (;;) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) w = ::write(fd, data, n);
    if (w < 0 && errno == EINTR) continue;
    return w;
  }
}

bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = write_some(fd, data, n);
    if (w <= 0) return false;
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Reads exactly n bytes; returns n on success, 0 on immediate EOF,
/// -1 on error, and the partial count on EOF mid-way.
ssize_t read_all(int fd, char* data, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, data + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) break;
    got += static_cast<std::size_t>(r);
  }
  return static_cast<ssize_t>(got);
}

constexpr ssize_t kReadTimedOut = -2;

/// read_all against an absolute deadline: poll(2) before every read so a
/// peer trickling one byte at a time still exhausts the same budget as
/// one that sends nothing. Same returns as read_all plus kReadTimedOut.
ssize_t read_all_until(int fd, char* data, std::size_t n,
                       std::chrono::steady_clock::time_point deadline) {
  std::size_t got = 0;
  while (got < n) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return kReadTimedOut;
    const long long left_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count();
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int pr = ::poll(
        &pfd, 1,
        static_cast<int>(left_ms >= 3600000 ? 3600000 : left_ms + 1));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (pr == 0) return kReadTimedOut;
    const ssize_t r = ::read(fd, data + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) break;
    got += static_cast<std::size_t>(r);
  }
  return static_cast<ssize_t>(got);
}

}  // namespace

void write_frame(int fd, std::string_view payload) {
  PIL_REQUIRE(payload.size() <= 0x7fffffffu, "frame payload too large");
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  char header[4] = {static_cast<char>((n >> 24) & 0xff),
                    static_cast<char>((n >> 16) & 0xff),
                    static_cast<char>((n >> 8) & 0xff),
                    static_cast<char>(n & 0xff)};
  PIL_REQUIRE(write_all(fd, header, sizeof(header)) &&
                  write_all(fd, payload.data(), payload.size()),
              "frame write failed: " + std::string(std::strerror(errno)));
}

FrameReadStatus read_frame(int fd, std::string& payload,
                           std::size_t max_bytes) {
  payload.clear();
  unsigned char header[4];
  const ssize_t h = read_all(fd, reinterpret_cast<char*>(header), 4);
  if (h < 0) return FrameReadStatus::kError;
  if (h == 0) return FrameReadStatus::kClosed;
  if (h < 4) return FrameReadStatus::kTruncated;
  const std::size_t n = (static_cast<std::size_t>(header[0]) << 24) |
                        (static_cast<std::size_t>(header[1]) << 16) |
                        (static_cast<std::size_t>(header[2]) << 8) |
                        static_cast<std::size_t>(header[3]);
  if (n > max_bytes) {
    payload = std::to_string(n);
    return FrameReadStatus::kOversize;
  }
  payload.resize(n);
  if (n == 0) return FrameReadStatus::kOk;
  const ssize_t got = read_all(fd, payload.data(), n);
  if (got < 0) {
    payload.clear();
    return FrameReadStatus::kError;
  }
  if (static_cast<std::size_t>(got) < n) {
    payload.clear();
    return FrameReadStatus::kTruncated;
  }
  return FrameReadStatus::kOk;
}

FrameReadStatus read_frame(int fd, std::string& payload,
                           std::size_t max_bytes, double timeout_seconds) {
  if (timeout_seconds <= 0) return read_frame(fd, payload, max_bytes);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  payload.clear();
  unsigned char header[4];
  const ssize_t h =
      read_all_until(fd, reinterpret_cast<char*>(header), 4, deadline);
  if (h == kReadTimedOut) return FrameReadStatus::kTimeout;
  if (h < 0) return FrameReadStatus::kError;
  if (h == 0) return FrameReadStatus::kClosed;
  if (h < 4) return FrameReadStatus::kTruncated;
  const std::size_t n = (static_cast<std::size_t>(header[0]) << 24) |
                        (static_cast<std::size_t>(header[1]) << 16) |
                        (static_cast<std::size_t>(header[2]) << 8) |
                        static_cast<std::size_t>(header[3]);
  if (n > max_bytes) {
    payload = std::to_string(n);
    return FrameReadStatus::kOversize;
  }
  payload.resize(n);
  if (n == 0) return FrameReadStatus::kOk;
  const ssize_t got = read_all_until(fd, payload.data(), n, deadline);
  if (got == kReadTimedOut) {
    payload.clear();
    return FrameReadStatus::kTimeout;
  }
  if (got < 0) {
    payload.clear();
    return FrameReadStatus::kError;
  }
  if (static_cast<std::size_t>(got) < n) {
    payload.clear();
    return FrameReadStatus::kTruncated;
  }
  return FrameReadStatus::kOk;
}

void write_frame_truncated(int fd, std::string_view payload,
                           std::size_t bytes) {
  PIL_REQUIRE(payload.size() <= 0x7fffffffu, "frame payload too large");
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  char header[4] = {static_cast<char>((n >> 24) & 0xff),
                    static_cast<char>((n >> 16) & 0xff),
                    static_cast<char>((n >> 8) & 0xff),
                    static_cast<char>(n & 0xff)};
  const std::size_t sent = bytes < payload.size() ? bytes : payload.size();
  PIL_REQUIRE(write_all(fd, header, sizeof(header)) &&
                  (sent == 0 || write_all(fd, payload.data(), sent)),
              "frame write failed: " + std::string(std::strerror(errno)));
}

}  // namespace pil::service
