#include "pil/service/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "pil/util/error.hpp"

namespace pil::service {

Client Client::connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PIL_REQUIRE(fd >= 0, "socket(AF_UNIX) failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  PIL_REQUIRE(path.size() < sizeof(addr.sun_path),
              "unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw Error("cannot connect to unix socket " + path + ": " + why);
  }
  return Client(fd);
}

Client Client::connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PIL_REQUIRE(fd >= 0, "socket(AF_INET) failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw Error("cannot connect to 127.0.0.1:" + std::to_string(port) +
                ": " + why);
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      max_frame_bytes_(other.max_frame_bytes_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    max_frame_bytes_ = other.max_frame_bytes_;
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Response Client::call(const Request& request) {
  return decode_response(call_raw(encode_request(request)));
}

std::string Client::call_raw(std::string_view payload) {
  PIL_REQUIRE(fd_ >= 0, "client is closed");
  write_frame(fd_, payload);
  std::string response;
  const FrameReadStatus status = read_frame(fd_, response, max_frame_bytes_);
  PIL_REQUIRE(status == FrameReadStatus::kOk,
              std::string("service connection dropped while awaiting a "
                          "response (") +
                  to_string(status) + ")");
  return response;
}

void Client::send_bytes(std::string_view bytes) {
  PIL_REQUIRE(fd_ >= 0, "client is closed");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    PIL_REQUIRE(w > 0, "send failed: " + std::string(std::strerror(errno)));
    off += static_cast<std::size_t>(w);
  }
}

}  // namespace pil::service
