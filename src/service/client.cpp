#include "pil/service/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "pil/util/error.hpp"

namespace pil::service {

namespace {

int dial_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PIL_REQUIRE(fd >= 0, "socket(AF_UNIX) failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  PIL_REQUIRE(path.size() < sizeof(addr.sun_path),
              "unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw TransportError(
        TransportError::Kind::kConnect,
        "cannot connect to unix socket " + path + ": " + why);
  }
  return fd;
}

int dial_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PIL_REQUIRE(fd >= 0, "socket(AF_INET) failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw TransportError(
        TransportError::Kind::kConnect,
        "cannot connect to 127.0.0.1:" + std::to_string(port) + ": " + why);
  }
  return fd;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool retry_safe(const Request& request) {
  switch (request.op) {
    case Op::kOpenSession:  // reuse-idempotent by the pool key
    case Op::kSolve:        // non-mutating
    case Op::kStats:        // non-mutating
      return true;
    case Op::kApplyEdit:
      // Safe once it carries an idempotency key for the dedup window.
      return request.request_id != 0;
    case Op::kShutdown:
      // A lost ack may mean the shutdown began; re-sending races stop().
      return false;
  }
  return false;
}

}  // namespace

Client Client::connect_unix(const std::string& path) {
  Client client(dial_unix(path));
  client.endpoint_ = Endpoint::kUnix;
  client.endpoint_path_ = path;
  return client;
}

Client Client::connect_tcp(int port) {
  Client client(dial_tcp(port));
  client.endpoint_ = Endpoint::kTcp;
  client.endpoint_port_ = port;
  return client;
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      max_frame_bytes_(other.max_frame_bytes_),
      endpoint_(other.endpoint_),
      endpoint_path_(std::move(other.endpoint_path_)),
      endpoint_port_(other.endpoint_port_),
      call_seq_(other.call_seq_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    max_frame_bytes_ = other.max_frame_bytes_;
    endpoint_ = other.endpoint_;
    endpoint_path_ = std::move(other.endpoint_path_);
    endpoint_port_ = other.endpoint_port_;
    call_seq_ = other.call_seq_;
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::reconnect() {
  close();
  switch (endpoint_) {
    case Endpoint::kUnix: fd_ = dial_unix(endpoint_path_); return;
    case Endpoint::kTcp: fd_ = dial_tcp(endpoint_port_); return;
    case Endpoint::kNone: break;
  }
  throw TransportError(TransportError::Kind::kConnect,
                       "client has no endpoint to reconnect to");
}

Response Client::call(const Request& request) {
  return decode_response(call_raw(encode_request(request)));
}

Response Client::call_with_retry(Request& request, const RetryPolicy& policy,
                                 std::string* raw_out) {
  std::uint64_t rng =
      policy.jitter_seed != 0
          ? policy.jitter_seed
          : static_cast<std::uint64_t>(
                std::chrono::steady_clock::now().time_since_epoch().count()) ^
                (static_cast<std::uint64_t>(
                     reinterpret_cast<std::uintptr_t>(this))
                 << 16);
  // Fold in a per-client call counter: two calls on the same client (or
  // the same fixed jitter_seed) must never mint the same request_id, or
  // distinct edits would dedup against each other.
  rng = mix64(rng + mix64(++call_seq_));
  if (request.op == Op::kApplyEdit && request.request_id == 0) {
    do {
      rng = mix64(rng);
    } while (rng == 0);
    request.request_id = rng;
  }
  const bool safe = retry_safe(request);
  const std::string payload = encode_request(request);
  const auto t0 = std::chrono::steady_clock::now();
  const double budget_s =
      request.deadline_ms > 0 ? request.deadline_ms / 1000.0 : 0.0;
  std::string last_error;
  const int attempts = policy.retries >= 0 ? policy.retries + 1 : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Bounded exponential backoff with multiplicative jitter in
      // [0.5, 1): retrying fleets decorrelate instead of re-colliding.
      double delay_ms = policy.backoff_ms;
      for (int i = 1; i < attempt; ++i) delay_ms *= 2;
      if (delay_ms > policy.backoff_max_ms) delay_ms = policy.backoff_max_ms;
      rng = mix64(rng);
      delay_ms *= 0.5 + 0.5 * (static_cast<double>(rng >> 11) *
                               (1.0 / 9007199254740992.0));
      if (budget_s > 0) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        const double left_ms = (budget_s - elapsed) * 1e3;
        if (left_ms <= 0)
          throw TransportError(
              TransportError::Kind::kExhausted,
              "retry budget exhausted by the request deadline (" +
                  std::to_string(attempt) + " attempts): " + last_error);
        if (delay_ms > left_ms) delay_ms = left_ms;
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
    try {
      if (fd_ < 0) reconnect();
      const std::string raw = call_raw(payload);
      Response resp = decode_response(raw);
      if (!resp.ok && resp.retryable && safe) {
        // Pre-execution failure (queue-full shed, injected worker fault):
        // retry; falling out of the loop reports exhaustion.
        last_error = resp.error;
        continue;
      }
      if (raw_out != nullptr) *raw_out = raw;
      return resp;
    } catch (const TransportError& e) {
      close();  // the connection state is unknown; re-dial next attempt
      if (!safe) throw;
      last_error = e.what();
    }
  }
  throw TransportError(TransportError::Kind::kExhausted,
                       "request failed after " + std::to_string(attempts) +
                           " attempts: " + last_error);
}

std::string Client::call_raw(std::string_view payload) {
  PIL_REQUIRE(fd_ >= 0, "client is closed");
  try {
    write_frame(fd_, payload);
  } catch (const Error& e) {
    throw TransportError(TransportError::Kind::kDropped, e.what());
  }
  std::string response;
  const FrameReadStatus status = read_frame(fd_, response, max_frame_bytes_);
  if (status != FrameReadStatus::kOk)
    throw TransportError(
        TransportError::Kind::kDropped,
        std::string("service connection dropped while awaiting a "
                    "response (") +
            to_string(status) + ")");
  return response;
}

void Client::send_bytes(std::string_view bytes) {
  PIL_REQUIRE(fd_ >= 0, "client is closed");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    PIL_REQUIRE(w > 0, "send failed: " + std::string(std::strerror(errno)));
    off += static_cast<std::size_t>(w);
  }
}

}  // namespace pil::service
