#include "pil/service/server.hpp"

#include <netinet/in.h>
#include <sys/select.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "pil/layout/pld_io.hpp"
#include "pil/layout/synthetic.hpp"
#include "pil/obs/journal.hpp"
#include "pil/obs/json.hpp"
#include "pil/obs/metrics.hpp"
#include "pil/obs/slo.hpp"
#include "pil/obs/trace.hpp"
#include "pil/pilfill/session.hpp"
#include "pil/service/access_log.hpp"
#include "pil/service/protocol.hpp"
#include "pil/service/stats_http.hpp"
#include "pil/util/deadline.hpp"
#include "pil/util/error.hpp"
#include "pil/util/fault.hpp"

namespace pil::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Downgrade target for ILP-class methods under load: Greedy keeps the
/// column-cost model (it reads the same cost table as ILP-II) at a tiny
/// fraction of the work, which is exactly the ladder's first step.
bool is_downgradable(pilfill::Method m) {
  return m == pilfill::Method::kIlp1 || m == pilfill::Method::kIlp2 ||
         m == pilfill::Method::kConvex;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

double ms_since(Clock::time_point t0) { return seconds_since(t0) * 1e3; }

/// splitmix64 finalizer: turns a (seed + counter) sequence into
/// well-spread nonzero trace ids.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

struct Server::Impl {
  explicit Impl(const ServerConfig& cfg) : config(cfg) {}

  // ------------------------------------------------------------ sessions --
  struct SessionEntry {
    std::mutex mu;  ///< serializes edits/solves on the one FillSession
    std::unique_ptr<pilfill::FillSession> session;
    std::string id;
    std::string key;
    std::uint64_t layout_hash = 0;
    Clock::time_point last_used = Clock::now();
    /// Edits applied so far; echoed as edit_seq so clients can audit
    /// exactly-once ordering. Guarded by mu.
    long long edit_seq = 0;
    /// Idempotency window: recent request_id -> response, LRU-bounded at
    /// config.dedup_window. A retried apply_edit whose first attempt
    /// executed (response lost to a fault) is answered from here instead
    /// of re-applied. Guarded by mu -- a retry racing its original
    /// attempt serializes on the session lock and then hits the window.
    std::map<std::uint64_t, Response> dedup;
    std::deque<std::uint64_t> dedup_order;
  };

  // ---------------------------------------------------------------- jobs --
  struct Job {
    Request request;
    /// Anchored at admission. Also the watchdog's cancellation token:
    /// default-constructed it is unlimited but cancellable, and the
    /// session solve combines it with the flow budget, so cancel() from
    /// the watchdog degrades the solve like an expired deadline.
    util::Deadline deadline;
    bool has_deadline = false;
    Clock::time_point deadline_expires_at{};  ///< when has_deadline
    bool downgraded = false;  ///< admission downgraded ILP methods
    Clock::time_point admitted = Clock::now();  ///< decoded (job created)
    Clock::time_point enqueued;  ///< pushed into the queue
    /// Journal flow id for this request's events; set by execute() and
    /// passed into the session solve so solver tile events share it.
    std::uint32_t flow = 0;
    StageBreakdown stages;
    std::promise<Response> promise;
  };

  ServerConfig config;

  std::mutex mu;  // guards queue, sessions, stats, stopping
  std::condition_variable queue_cv;   ///< workers wait: job available
  std::condition_variable space_cv;   ///< producers wait: queue slot free
  std::condition_variable stop_cv;    ///< wait_for_shutdown
  std::deque<std::unique_ptr<Job>> queue;
  bool stopping = false;
  bool shutdown_requested = false;

  std::map<std::string, std::shared_ptr<SessionEntry>> sessions;  // by id
  std::map<std::string, std::string> key_index;  // pool key -> session id
  std::uint64_t next_session = 0;

  ServerStats counters;

  // -------------------------------------------------------- observability --
  const Clock::time_point started_at = Clock::now();
  /// Rolling per-second SLO windows; always on (recording is one mutexed
  /// bucket update per request -- noise against a solve).
  obs::SloRing slo{300};
  std::unique_ptr<AccessLog> access;
  std::unique_ptr<StatsHttpServer> http;
  /// Server-assigned trace ids: a mixed (entropy, counter) sequence so
  /// concurrent daemons produce disjoint traces.
  std::atomic<std::uint64_t> trace_seq{
      static_cast<std::uint64_t>(Clock::now().time_since_epoch().count())};

  std::uint64_t next_trace() {
    std::uint64_t t;
    do {
      t = mix64(trace_seq.fetch_add(1, std::memory_order_relaxed));
    } while (t == 0);
    return t;
  }

  // -------------------------------------------------------- chaos plumbing --
  /// Process-wide ordinals keying the service-plane fault sites: the n-th
  /// accept / received frame / written response / dispatched job. Which
  /// ordinal lands on which connection depends on scheduling, but the
  /// decision *sequence* for a (PIL_FAULT, seed) pair is fixed.
  std::atomic<std::uint64_t> accept_fault_key{0};
  std::atomic<std::uint64_t> frame_fault_key{0};
  std::atomic<std::uint64_t> write_fault_key{0};
  std::atomic<std::uint64_t> worker_fault_key{0};

  void note_fault(util::FaultSite site, std::uint64_t key) {
    obs::journal_record(obs::JournalEventKind::kFaultInjected, 0,
                        static_cast<std::uint32_t>(site), key);
    {
      std::lock_guard<std::mutex> lock(mu);
      counters.faults_injected += 1;
    }
    if (obs::metrics_enabled())
      obs::metrics().counter("pil.service.faults_injected").add();
  }

  /// Evaluate a throw-action service fault site in line: true = the site
  /// fired and the caller performs the site's disruption (the injected
  /// exception never escapes). A delay-action rule sleeps in place and
  /// returns false. Disarmed cost: one relaxed atomic load.
  bool service_fault(util::FaultSite site, std::uint64_t key) {
    if (!util::faults_armed()) return false;
    try {
      util::maybe_fault(site, key);
    } catch (const util::InjectedFault&) {
      note_fault(site, key);
      return true;
    }
    return false;
  }

  // ------------------------------------------------------------- watchdog --
  /// Solves currently executing under a request deadline, visible to the
  /// watchdog thread. Registered around the session solve call only --
  /// the one stage that can stall unboundedly.
  struct InFlight {
    util::Deadline deadline;  ///< shares the job's cancellation flag
    Clock::time_point deadline_at{};  ///< the flow deadline itself
    Clock::time_point overrun_at{};   ///< deadline + watchdog grace
    Op op = Op::kSolve;
    std::uint64_t req_id = 0;
    std::uint64_t trace_id = 0;
    bool fired = false;
  };
  std::mutex inflight_mu;
  std::map<std::uint64_t, InFlight> inflight;
  std::uint64_t inflight_seq = 0;

  std::uint64_t register_inflight(const Job& job) {
    if (!job.has_deadline || config.watchdog_grace_seconds <= 0) return 0;
    InFlight entry;
    entry.deadline = job.deadline;
    entry.deadline_at = job.deadline_expires_at;
    entry.overrun_at =
        job.deadline_expires_at +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(config.watchdog_grace_seconds));
    entry.op = job.request.op;
    entry.req_id = job.request.id;
    entry.trace_id = job.request.trace_id;
    std::lock_guard<std::mutex> lock(inflight_mu);
    const std::uint64_t id = ++inflight_seq;
    inflight.emplace(id, std::move(entry));
    return id;
  }

  void unregister_inflight(std::uint64_t id) {
    if (id == 0) return;
    std::lock_guard<std::mutex> lock(inflight_mu);
    inflight.erase(id);
  }

  /// Unregisters on scope exit, exception-safe (a faulted solve must not
  /// leave a stale entry for the watchdog to cancel forever after).
  struct InflightGuard {
    Impl* impl;
    std::uint64_t id;
    ~InflightGuard() { impl->unregister_inflight(id); }
  };

  void watchdog_loop() {
    obs::journal_set_thread_name("serve-watchdog");
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu);
        stop_cv.wait_for(
            lock,
            std::chrono::duration<double>(config.watchdog_poll_seconds),
            [&] { return stopping; });
        if (stopping) return;
      }
      const Clock::time_point now = Clock::now();
      int fired_now = 0;
      {
        std::lock_guard<std::mutex> lock(inflight_mu);
        for (auto& [id, entry] : inflight) {
          if (entry.fired || now < entry.overrun_at) continue;
          entry.fired = true;
          // Fire the cooperative cancellation token: the solve's combined
          // deadline shares this flag, so the ladder serves the remaining
          // tiles cheaply and the worker returns (degraded, not killed).
          entry.deadline.cancel();
          fired_now += 1;
          obs::journal_record(
              obs::JournalEventKind::kStuckWorker,
              static_cast<std::uint16_t>(entry.op),
              static_cast<std::uint32_t>(entry.req_id), entry.trace_id,
              std::chrono::duration<double>(now - entry.deadline_at)
                  .count());
        }
      }
      if (fired_now > 0) {
        {
          std::lock_guard<std::mutex> lock(mu);
          counters.stuck_workers += fired_now;
        }
        if (obs::metrics_enabled())
          obs::metrics().counter("pil.service.stuck_workers").add(fired_now);
      }
    }
  }

  // ------------------------------------------------------------- threads --
  std::vector<std::thread> workers;
  std::thread acceptor;
  std::thread watchdog;
  int unix_fd = -1;
  int tcp_fd = -1;
  int bound_tcp_port = -1;
  bool started = false;

  struct Conn {
    int fd = -1;
    std::thread thread;
  };
  std::mutex conns_mu;
  std::vector<std::unique_ptr<Conn>> conns;

  // ---------------------------------------------------------------- metrics
  void count_request(Op op) {
    if (!obs::metrics_enabled()) return;
    obs::metrics()
        .counter(obs::labeled("pil.service.requests", {{"op", to_string(op)}}))
        .add();
  }

  void observe_handled(Op op, const Response& resp, double seconds) {
    if (!obs::metrics_enabled()) return;
    auto& m = obs::metrics();
    m.histogram(
         obs::labeled("pil.service.handle_seconds", {{"op", to_string(op)}}))
        .observe(seconds);
    if (resp.shed) m.counter("pil.service.shed").add();
    if (resp.degraded) m.counter("pil.service.degraded").add();
    if (!resp.ok) m.counter("pil.service.errors").add();
  }

  void publish_gauges() {
    if (!obs::metrics_enabled()) return;
    auto& m = obs::metrics();
    m.gauge("pil.service.queue_depth")
        .set(static_cast<double>(counters.queue_depth));
    m.gauge("pil.service.sessions")
        .set(static_cast<double>(counters.sessions_open));
  }

  /// One pil.access.v1 line (see access_log.hpp for the field reference).
  std::string access_line(const Response& resp,
                          const std::vector<pilfill::Method>& methods,
                          bool decoded, double total_seconds) {
    std::ostringstream os;
    obs::JsonWriter w(os, /*pretty=*/false);
    w.begin_object();
    w.kv("schema", "pil.access.v1");
    w.kv("ts_ms",
         static_cast<long long>(
             std::chrono::duration_cast<std::chrono::milliseconds>(
                 std::chrono::system_clock::now().time_since_epoch())
                 .count()));
    w.kv("trace_id", hex16(resp.trace_id));
    w.kv("op", decoded ? to_string(resp.op) : "invalid");
    w.kv("id", static_cast<unsigned long long>(resp.id));
    if (!resp.session.empty()) w.kv("session", resp.session);
    w.kv("ok", resp.ok);
    if (resp.shed) w.kv("shed", true);
    if (resp.degraded) w.kv("degraded", true);
    if (!resp.error.empty()) w.kv("error", resp.error);
    if (!methods.empty()) {
      w.key("methods");
      w.begin_array();
      for (pilfill::Method m : methods) w.value(method_wire_name(m));
      w.end_array();
    }
    if (resp.stages.has_value()) {
      w.key("stages");
      w.begin_object();
      w.kv("queue_ms", resp.stages->queue_ms);
      w.kv("admission_ms", resp.stages->admission_ms);
      w.kv("session_ms", resp.stages->session_ms);
      w.kv("solve_ms", resp.stages->solve_ms);
      w.kv("write_ms", resp.stages->write_ms);
      w.end_object();
    }
    w.kv("total_ms", total_seconds * 1e3);
    w.end_object();
    return os.str();
  }

  std::string slo_json() {
    std::ostringstream os;
    obs::JsonWriter w(os, /*pretty=*/false);
    w.begin_object();
    w.kv("schema", "pil.slo.v1");
    w.kv("uptime_seconds", seconds_since(started_at));
    {
      std::lock_guard<std::mutex> lock(mu);
      w.kv("queue_depth", counters.queue_depth);
      w.kv("queue_capacity", config.queue_capacity);
      w.kv("workers", config.workers);
      w.kv("sessions_open", static_cast<int>(sessions.size()));
      w.kv("requests_total", counters.requests);
      w.kv("executed_total", counters.executed);
      w.kv("shed_total", counters.shed);
      w.kv("rejected_total", counters.rejected);
      w.kv("errors_total", counters.errors);
    }
    obs::write_slo_windows(w, slo, {10, 60, 300});
    w.end_object();
    return os.str();
  }

  HttpContent handle_http(const std::string& path) {
    HttpContent content;
    if (path == "/healthz") {
      // Liveness, not readiness: the accept loops are running (this
      // response proves it) and the worker pool exists.
      content.body = "ok\n";
    } else if (path == "/metrics") {
      std::ostringstream os;
      obs::metrics().write_openmetrics(os);
      content.content_type =
          "application/openmetrics-text; version=1.0.0; charset=utf-8";
      content.body = os.str();
    } else if (path == "/slo") {
      content.content_type = "application/json";
      content.body = slo_json() + "\n";
    } else {
      content.status = 404;
      content.body = "unknown path " + path +
                     " (routes: /healthz /metrics /slo)\n";
    }
    return content;
  }

  // -------------------------------------------------------------- admission
  /// Admit one decoded request into the bounded queue, applying load
  /// shedding, and return the future carrying its response. Returns an
  /// immediate response instead when the request is rejected.
  std::future<Response> admit(Request&& request, Response& immediate,
                              bool& rejected) {
    auto job = std::make_unique<Job>();
    job->request = std::move(request);
    const double deadline_s =
        job->request.deadline_ms > 0 ? job->request.deadline_ms / 1000.0
                                     : config.default_deadline_seconds;
    if (deadline_s > 0) {
      job->deadline = util::Deadline::after(deadline_s);
      job->has_deadline = true;
      job->deadline_expires_at =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(deadline_s));
    }

    std::unique_lock<std::mutex> lock(mu);
    counters.requests += 1;
    if (config.reject_when_full) {
      if (!stopping &&
          static_cast<int>(queue.size()) >= config.queue_capacity) {
        counters.shed += 1;
        counters.rejected += 1;
        immediate = make_rejection(job->request, "queue full", true);
        // Nothing executed; the same request (same request_id) can be
        // retried verbatim once the queue drains.
        immediate.retryable = true;
        rejected = true;
        return {};
      }
    } else {
      space_cv.wait(lock, [&] {
        return stopping ||
               static_cast<int>(queue.size()) < config.queue_capacity;
      });
    }
    if (stopping) {
      counters.rejected += 1;
      immediate = make_rejection(job->request, "server shutting down", false);
      rejected = true;
      return {};
    }
    // Load shedding: under queue pressure, serve ILP-class methods with
    // Greedy and say so. The request itself stays admitted -- shedding
    // trades solution quality for latency, not availability. The depth
    // counts the incoming request, so degrade_queue_depth=1 sheds every
    // solve (a deterministic overload drill).
    if (config.degrade_queue_depth > 0 &&
        static_cast<int>(queue.size()) + 1 >= config.degrade_queue_depth &&
        job->request.op == Op::kSolve) {
      for (pilfill::Method m : job->request.methods)
        if (is_downgradable(m)) {
          job->downgraded = true;
          break;
        }
      if (job->downgraded) counters.shed += 1;
    }
    rejected = false;
    job->stages.admission_ms = ms_since(job->admitted);
    job->enqueued = Clock::now();
    std::future<Response> future = job->promise.get_future();
    queue.push_back(std::move(job));
    counters.queue_depth = static_cast<int>(queue.size());
    counters.queue_peak = std::max(counters.queue_peak, counters.queue_depth);
    slo.sample_queue_depth(counters.queue_depth);
    publish_gauges();
    queue_cv.notify_one();
    return future;
  }

  static Response make_rejection(const Request& request,
                                 const std::string& why, bool shed) {
    Response resp;
    resp.id = request.id;
    resp.op = request.op;
    resp.trace_id = request.trace_id;
    resp.ok = false;
    resp.shed = shed;
    resp.error = why;
    return resp;
  }

  // ---------------------------------------------------------------- workers
  void worker_loop(int index) {
    obs::journal_set_thread_name("serve-" + std::to_string(index));
    for (;;) {
      std::unique_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu);
        queue_cv.wait(lock, [&] { return stopping || !queue.empty(); });
        // Drain the queue even while stopping: every admitted request has
        // a connection thread blocked on its future.
        if (queue.empty()) return;
        job = std::move(queue.front());
        queue.pop_front();
        counters.queue_depth = static_cast<int>(queue.size());
        slo.sample_queue_depth(counters.queue_depth);
        publish_gauges();
      }
      job->stages.queue_ms = ms_since(job->enqueued);
      space_cv.notify_one();
      Response resp = execute(*job);
      {
        std::lock_guard<std::mutex> lock(mu);
        counters.executed += 1;
        if (resp.degraded) counters.degraded += 1;
        if (!resp.ok) counters.errors += 1;
      }
      job->promise.set_value(std::move(resp));
    }
  }

  Response execute(Job& job) {
    const Request& req = job.request;
    const Clock::time_point t0 = Clock::now();
    // One journal flow id per request: the service events below carry it,
    // and do_solve hands it to the session so every solver event -- down
    // to the per-tile cause chains in a flight dump -- links back to this
    // request (and through the `trace` member, to the client's trace id).
    job.flow = obs::journal_new_id();
    obs::JournalScope journal_scope({0, job.flow, -1});
    // Perfetto-style span per executed request, tagged with the wire
    // trace id so a trace viewer shows the same key as the access log
    // and flight dumps. Args are only built when a session is attached.
    obs::TraceSpan span(to_string(req.op),
                        obs::trace_session() != nullptr
                            ? "{\"trace\":\"" + hex16(req.trace_id) + "\"}"
                            : std::string());
    obs::journal_record(obs::JournalEventKind::kServiceRequest,
                        static_cast<std::uint16_t>(req.op),
                        static_cast<std::uint32_t>(req.id), req.trace_id);
    Response resp;
    resp.id = req.id;
    resp.op = req.op;
    resp.trace_id = req.trace_id;
    try {
      // Chaos site: a worker that dies *before* dispatch. The op has not
      // executed, so the error response is marked retryable -- the retry
      // is safe with or without the dedup window.
      util::maybe_fault(
          util::FaultSite::kWorkerThrow,
          worker_fault_key.fetch_add(1, std::memory_order_relaxed));
      switch (req.op) {
        case Op::kOpenSession: do_open_session(job, resp); break;
        case Op::kApplyEdit: do_apply_edit(job, resp); break;
        case Op::kSolve: do_solve(job, resp); break;
        case Op::kStats: do_stats(resp); break;
        case Op::kShutdown: do_shutdown(resp); break;
      }
    } catch (const util::InjectedFault& e) {
      resp.ok = false;
      resp.error = e.what();
      if (e.site() == util::FaultSite::kWorkerThrow) {
        resp.retryable = true;
        note_fault(e.site(), e.key());
      }
    } catch (const Error& e) {
      resp.ok = false;
      resp.error = e.what();
      resp.error_field = pilfill::extract_config_field_path(e.what());
    } catch (const std::exception& e) {
      resp.ok = false;
      resp.error = e.what();
    }
    resp.stages = job.stages;
    const double seconds = seconds_since(t0);
    const std::uint32_t bits = (resp.ok ? 1u : 0u) |
                               (resp.degraded ? 2u : 0u) |
                               (resp.shed ? 4u : 0u);
    obs::journal_record(obs::JournalEventKind::kServiceResponse,
                        static_cast<std::uint16_t>(req.op), bits,
                        req.trace_id, seconds);
    observe_handled(req.op, resp, seconds);
    return resp;
  }

  // ------------------------------------------------------------ operations
  void do_open_session(Job& job, Response& resp) {
    const Request& req = job.request;
    const Clock::time_point t0 = Clock::now();
    const int sources = (!req.layout_pld.empty() ? 1 : 0) +
                        (!req.layout_path.empty() ? 1 : 0) +
                        (req.gen.has_value() ? 1 : 0);
    PIL_REQUIRE(sources == 1,
                "open_session needs exactly one of layout_pld, layout_path, "
                "gen");
    PIL_REQUIRE(req.layout_path.empty() || config.allow_layout_path,
                "layout_path is disabled on this server");

    layout::Layout layout;
    if (!req.layout_pld.empty()) {
      std::istringstream is(req.layout_pld);
      layout = layout::read_pld(is);
    } else if (!req.layout_path.empty()) {
      layout = layout::read_pld_file(req.layout_path);
    } else {
      layout = layout::generate_synthetic_layout(req.gen->to_config());
    }

    const std::uint64_t layout_hash = layout_fingerprint(layout);
    const std::uint64_t model_hash = model_fingerprint(req.config.model());
    std::string key = req.session_key;
    if (key.empty()) {
      char buf[34];
      std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                    static_cast<unsigned long long>(layout_hash),
                    static_cast<unsigned long long>(model_hash));
      key = buf;
    }

    // Fast path: an existing session under this key is reused untouched --
    // its layout may have drifted via apply_edit, which is the point of
    // sharing (collaborating editors see each other's edits).
    {
      std::lock_guard<std::mutex> lock(mu);
      auto ki = key_index.find(key);
      if (ki != key_index.end()) {
        auto entry = sessions.at(ki->second);
        entry->last_used = Clock::now();
        resp.ok = true;
        resp.session = entry->id;
        resp.reused = true;
        resp.layout_hash = entry->layout_hash;
        resp.tiles = entry->session->tiles_total();
        resp.prep_seconds = entry->session->prep_seconds();
        counters.sessions_reused += 1;
        job.stages.session_ms = ms_since(t0);
        return;
      }
    }

    // Build outside the pool lock (prep can take seconds), then publish;
    // a racing open of the same key keeps the first-published session.
    job.stages.session_ms = ms_since(t0);
    const Clock::time_point t_build = Clock::now();
    auto entry = std::make_shared<SessionEntry>();
    entry->key = key;
    entry->layout_hash = layout_hash;
    entry->session =
        std::make_unique<pilfill::FillSession>(layout, req.config);
    job.stages.solve_ms = ms_since(t_build);

    {
      std::lock_guard<std::mutex> lock(mu);
      auto ki = key_index.find(key);
      if (ki != key_index.end()) {
        auto existing = sessions.at(ki->second);
        existing->last_used = Clock::now();
        resp.ok = true;
        resp.session = existing->id;
        resp.reused = true;
        resp.layout_hash = existing->layout_hash;
        resp.tiles = existing->session->tiles_total();
        resp.prep_seconds = existing->session->prep_seconds();
        counters.sessions_reused += 1;
        return;  // entry (and its prep work) is discarded
      }
      entry->id = "s" + std::to_string(++next_session);
      sessions.emplace(entry->id, entry);
      key_index.emplace(key, entry->id);
      counters.sessions_opened += 1;
      counters.sessions_open = static_cast<int>(sessions.size());
      evict_locked();
      publish_gauges();
      resp.ok = true;
      resp.session = entry->id;
      resp.reused = false;
      resp.layout_hash = layout_hash;
      resp.tiles = entry->session->tiles_total();
      resp.prep_seconds = entry->session->prep_seconds();
    }
  }

  /// LRU eviction beyond max_sessions. try_lock: a session mid-solve is
  /// busy, not idle -- skip it rather than stall the pool.
  void evict_locked() {
    while (static_cast<int>(sessions.size()) >
           std::max(1, config.max_sessions)) {
      std::string victim;
      Clock::time_point oldest = Clock::time_point::max();
      for (const auto& [id, entry] : sessions)
        if (entry->last_used < oldest && entry->mu.try_lock()) {
          entry->mu.unlock();
          oldest = entry->last_used;
          victim = id;
        }
      if (victim.empty()) return;  // everything busy; try again next open
      key_index.erase(sessions.at(victim)->key);
      sessions.erase(victim);
      counters.sessions_evicted += 1;
      counters.sessions_open = static_cast<int>(sessions.size());
    }
  }

  std::shared_ptr<SessionEntry> find_session(const std::string& id) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = sessions.find(id);
    PIL_REQUIRE(it != sessions.end(),
                "unknown session \"" + id + "\" (evicted or never opened)");
    it->second->last_used = Clock::now();
    return it->second;
  }

  void do_apply_edit(Job& job, Response& resp) {
    const Clock::time_point t0 = Clock::now();
    auto entry = find_session(job.request.session);
    std::lock_guard<std::mutex> lock(entry->mu);
    job.stages.session_ms = ms_since(t0);
    const std::uint64_t rid = job.request.request_id;
    const bool dedup_on = rid != 0 && config.dedup_window > 0;
    if (dedup_on) {
      const auto hit = entry->dedup.find(rid);
      if (hit != entry->dedup.end()) {
        // The first attempt executed; its response was lost in flight.
        // Acknowledge from the window -- nothing runs twice.
        resp = hit->second;
        resp.id = job.request.id;
        resp.trace_id = job.request.trace_id;
        resp.deduped = true;
        {
          std::lock_guard<std::mutex> slock(mu);
          counters.deduped += 1;
        }
        if (obs::metrics_enabled())
          obs::metrics().counter("pil.service.deduped").add();
        return;
      }
    }
    const Clock::time_point t_edit = Clock::now();
    const pilfill::EditStats stats =
        entry->session->apply_edit(job.request.edit);
    job.stages.solve_ms = ms_since(t_edit);
    entry->edit_seq += 1;
    resp.ok = true;
    resp.session = entry->id;
    resp.edit_seq = entry->edit_seq;
    EditSummary s;
    s.segment = stats.segment;
    s.columns_rescanned = stats.columns_rescanned;
    s.tiles_retargeted = stats.tiles_retargeted;
    s.tiles_dirty = stats.tiles_dirty;
    s.seconds = stats.seconds;
    resp.edit = s;
    if (dedup_on) {
      // A failed edit is never cached: apply_edit rolled the session
      // back, so the retry should re-attempt, not replay the error.
      entry->dedup.emplace(rid, resp);
      entry->dedup_order.push_back(rid);
      while (static_cast<int>(entry->dedup_order.size()) >
             config.dedup_window) {
        entry->dedup.erase(entry->dedup_order.front());
        entry->dedup_order.pop_front();
      }
    }
  }

  void do_solve(Job& job, Response& resp) {
    const Request& req = job.request;
    PIL_REQUIRE(!req.methods.empty(), "solve needs at least one method");
    const Clock::time_point t0 = Clock::now();
    auto entry = find_session(req.session);

    // Admission downgrade: ILP-class methods are served by Greedy.
    std::vector<pilfill::Method> served;
    served.reserve(req.methods.size());
    for (pilfill::Method m : req.methods)
      served.push_back(job.downgraded && is_downgradable(m)
                           ? pilfill::Method::kGreedy
                           : m);
    std::vector<pilfill::Method> unique_serve;
    for (pilfill::Method m : served)
      if (std::find(unique_serve.begin(), unique_serve.end(), m) ==
          unique_serve.end())
        unique_serve.push_back(m);

    std::lock_guard<std::mutex> lock(entry->mu);
    job.stages.session_ms = ms_since(t0);

    // Per-request policy on top of the session's base policy. The request
    // deadline was anchored at admission, so queue wait has already been
    // spent; an expired budget buys a near-zero one (0 means unlimited).
    pilfill::SolvePolicy policy = entry->session->config().policy();
    if (job.has_deadline) {
      const double remaining = job.deadline.remaining_seconds();
      policy.flow_deadline_seconds = std::max(remaining, 1e-9);
    }
    if (req.tile_deadline_ms > 0)
      policy.tile_deadline_seconds = req.tile_deadline_ms / 1000.0;
    if (req.no_degrade) policy.degrade_on_failure = false;

    const Clock::time_point t_solve = Clock::now();
    const std::uint64_t watch_id = register_inflight(job);
    InflightGuard watch_guard{this, watch_id};
    const pilfill::FlowResult result =
        entry->session->solve(unique_serve, policy, job.flow, &job.deadline);
    job.stages.solve_ms = ms_since(t_solve);

    const Clock::time_point t_write = Clock::now();
    resp.ok = true;
    resp.session = entry->id;
    resp.edit_seq = entry->edit_seq;
    resp.shed = job.downgraded;
    for (std::size_t i = 0; i < req.methods.size(); ++i) {
      const auto it = std::find_if(
          result.methods.begin(), result.methods.end(),
          [&](const pilfill::MethodResult& mr) {
            return mr.method == served[i];
          });
      PIL_ASSERT(it != result.methods.end(), "served method missing");
      MethodSummary s =
          summarize_method(*it, req.methods[i], req.include_placement);
      resp.methods.push_back(std::move(s));
      if (req.methods[i] != served[i] || it->tiles_degraded > 0 ||
          it->tiles_failed > 0)
        resp.degraded = true;
    }
    job.stages.write_ms = ms_since(t_write);
  }

  void do_stats(Response& resp) {
    ServerStats snap;
    int open_sessions;
    {
      std::lock_guard<std::mutex> lock(mu);
      snap = counters;
      open_sessions = static_cast<int>(sessions.size());
    }
    std::ostringstream os;
    obs::JsonWriter w(os, /*pretty=*/false);
    w.begin_object();
    w.kv("requests", snap.requests);
    w.kv("executed", snap.executed);
    w.kv("shed", snap.shed);
    w.kv("degraded", snap.degraded);
    w.kv("rejected", snap.rejected);
    w.kv("errors", snap.errors);
    w.kv("sessions_open", open_sessions);
    w.kv("sessions_opened", snap.sessions_opened);
    w.kv("sessions_reused", snap.sessions_reused);
    w.kv("sessions_evicted", snap.sessions_evicted);
    w.kv("accept_errors", snap.accept_errors);
    w.kv("read_timeouts", snap.read_timeouts);
    w.kv("deduped", snap.deduped);
    w.kv("stuck_workers", snap.stuck_workers);
    w.kv("faults_injected", snap.faults_injected);
    w.kv("queue_depth", snap.queue_depth);
    w.kv("queue_peak", snap.queue_peak);
    w.kv("workers", config.workers);
    w.kv("queue_capacity", config.queue_capacity);
    w.kv("degrade_queue_depth", config.degrade_queue_depth);
    w.end_object();
    resp.ok = true;
    resp.stats_json = os.str();
  }

  void do_shutdown(Response& resp) {
    // Only acknowledge here. The connection thread signals the actual
    // shutdown after this response has been written back -- signaling now
    // would race stop() against the response frame and the client could
    // see the connection drop instead of its acknowledgement.
    resp.ok = true;
  }

  void signal_shutdown() {
    std::lock_guard<std::mutex> lock(mu);
    shutdown_requested = true;
    stop_cv.notify_all();
  }

  // ------------------------------------------------------------ transport
  void accept_loop() {
    obs::journal_set_thread_name("serve-accept");
    while (true) {
      // Wait on both listeners without poll(): accept one at a time via
      // blocking accept on whichever exists; with both, use poll(2).
      int fd = -1;
      if (unix_fd >= 0 && tcp_fd >= 0) {
        fd = accept_either();
      } else {
        const int lfd = unix_fd >= 0 ? unix_fd : tcp_fd;
        fd = lfd >= 0 ? ::accept(lfd, nullptr, nullptr) : -1;
      }
      if (fd < 0) {
        const int err = errno;
        {
          std::lock_guard<std::mutex> lock(mu);
          if (stopping) return;
        }
        if (err == EINTR || err == ECONNABORTED) continue;
        if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
            err == ENOMEM) {
          // Fd/buffer exhaustion is a load condition, not a listener
          // failure: count it, back off briefly (connections finishing
          // release fds), keep accepting.
          {
            std::lock_guard<std::mutex> lock(mu);
            counters.accept_errors += 1;
          }
          if (obs::metrics_enabled())
            obs::metrics().counter("pil.service.accept_errors").add();
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          continue;
        }
        return;  // listener closed
      }
      // Chaos site: the connection dies between accept and first frame
      // (a client crash, a dropped NAT mapping). Nothing was read, so
      // nothing needs answering.
      if (service_fault(
              util::FaultSite::kAcceptDrop,
              accept_fault_key.fetch_add(1, std::memory_order_relaxed))) {
        ::close(fd);
        continue;
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      Conn* raw = conn.get();
      conn->thread = std::thread([this, raw] { serve_connection(raw->fd); });
      std::lock_guard<std::mutex> lock(conns_mu);
      conns.push_back(std::move(conn));
    }
  }

  int accept_either() {
    for (;;) {
      fd_set rfds;
      FD_ZERO(&rfds);
      FD_SET(unix_fd, &rfds);
      FD_SET(tcp_fd, &rfds);
      const int nfds = std::max(unix_fd, tcp_fd) + 1;
      const int rc = ::select(nfds, &rfds, nullptr, nullptr, nullptr);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      if (FD_ISSET(unix_fd, &rfds)) return ::accept(unix_fd, nullptr, nullptr);
      if (FD_ISSET(tcp_fd, &rfds)) return ::accept(tcp_fd, nullptr, nullptr);
    }
  }

  void serve_connection(int fd) {
    obs::journal_set_thread_name("serve-conn");
    std::string payload;
    for (;;) {
      const FrameReadStatus status = read_frame(
          fd, payload, config.max_frame_bytes, config.read_timeout_seconds);
      if (status == FrameReadStatus::kClosed) break;
      if (status == FrameReadStatus::kTimeout) {
        // Slow-loris defense: a peer that cannot deliver one frame within
        // the budget loses the connection, not a worker.
        {
          std::lock_guard<std::mutex> lock(mu);
          counters.read_timeouts += 1;
        }
        if (obs::metrics_enabled())
          obs::metrics().counter("pil.service.read_timeouts").add();
        break;
      }
      if (status == FrameReadStatus::kOversize) {
        // One parting diagnostic, then hang up: the stream position after
        // an oversize announcement cannot be trusted.
        Response resp;
        resp.ok = false;
        resp.error = "frame of " + payload + " bytes exceeds limit of " +
                     std::to_string(config.max_frame_bytes);
        try {
          write_frame(fd, encode_response(resp));
        } catch (const Error&) {
        }
        break;
      }
      if (status != FrameReadStatus::kOk) break;  // truncated / error

      // Chaos site: stall (delay action) or drop (throw action) a
      // received frame before any of it is handled.
      if (service_fault(
              util::FaultSite::kFrameDelay,
              frame_fault_key.fetch_add(1, std::memory_order_relaxed)))
        break;

      const Clock::time_point received = Clock::now();
      Response resp;
      bool have_resp = false;
      bool decoded = false;
      std::vector<pilfill::Method> methods;
      std::future<Response> future;
      try {
        Request req = decode_request(payload);
        decoded = true;
        // Every request gets a nonzero trace id -- the client's, or one
        // assigned here so rejections and failures are greppable too.
        if (req.trace_id == 0) req.trace_id = next_trace();
        methods = req.methods;
        count_request(req.op);
        bool rejected = false;
        future = admit(std::move(req), resp, rejected);
        have_resp = rejected;
      } catch (const Error& e) {
        resp.ok = false;
        resp.trace_id = next_trace();
        resp.error = e.what();
        resp.error_field = pilfill::extract_config_field_path(e.what());
        have_resp = true;
        std::lock_guard<std::mutex> lock(mu);
        counters.requests += 1;
        counters.errors += 1;
      }
      if (!have_resp) resp = future.get();
      const bool shutdown_after = resp.op == Op::kShutdown && resp.ok;
      bool peer_gone = false;
      // Chaos sites on the response path. Both fire *after* the request
      // executed -- the executed-but-unacknowledged case idempotent
      // retries exist for. conn_reset tears the connection down without
      // a byte (RST on TCP via zero-linger); frame_truncate announces
      // the full frame but stops half way through the payload.
      const std::uint64_t wkey =
          write_fault_key.fetch_add(1, std::memory_order_relaxed);
      if (service_fault(util::FaultSite::kConnReset, wkey)) {
        struct linger lg;
        lg.l_onoff = 1;
        lg.l_linger = 0;
        ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
        peer_gone = true;
      } else if (service_fault(util::FaultSite::kFrameTruncate, wkey)) {
        try {
          const std::string encoded = encode_response(resp);
          write_frame_truncated(fd, encoded, encoded.size() / 2);
        } catch (const Error&) {
        }
        peer_gone = true;
      } else {
        try {
          write_frame(fd, encode_response(resp));
        } catch (const Error&) {
          peer_gone = true;  // peer went away mid-response
        }
      }
      const double total_seconds = seconds_since(received);
      slo.record(total_seconds, !resp.ok, resp.shed, resp.degraded);
      if (access != nullptr)
        access->write(access_line(resp, methods, decoded, total_seconds));
      if (shutdown_after) {
        // Acknowledgement flushed; now wake the owner to stop the server.
        signal_shutdown();
        break;
      }
      if (peer_gone) break;
    }
    ::shutdown(fd, SHUT_RDWR);
    // The fd itself is closed by stop() (or here if already stopping is
    // irrelevant -- closing twice is avoided by marking it).
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      for (auto& c : conns)
        if (c->fd == fd) {
          ::close(fd);
          c->fd = -1;
          break;
        }
    }
  }

  // -------------------------------------------------------------- sockets
  int bind_unix(const std::string& path) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    PIL_REQUIRE(fd >= 0, "socket(AF_UNIX) failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    PIL_REQUIRE(path.size() < sizeof(addr.sun_path),
                "unix socket path too long: " + path);
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str());  // stale socket from a dead server
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw Error("cannot listen on unix socket " + path + ": " + why);
    }
    return fd;
  }

  int bind_tcp(int port, int& actual_port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    PIL_REQUIRE(fd >= 0, "socket(AF_INET) failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw Error("cannot listen on 127.0.0.1:" + std::to_string(port) +
                  ": " + why);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
    actual_port = ntohs(bound.sin_port);
    return fd;
  }
};

Server::Server(const ServerConfig& config) : impl_(new Impl(config)) {
  PIL_REQUIRE(!config.unix_socket.empty() || config.tcp_port >= 0,
              "server needs a unix socket path or a tcp port");
  PIL_REQUIRE(config.workers >= 1, "server needs at least one worker");
  PIL_REQUIRE(config.queue_capacity >= 1, "queue capacity must be >= 1");
  PIL_REQUIRE(config.max_sessions >= 1, "max_sessions must be >= 1");
}

Server::~Server() { stop(); }

void Server::start() {
  Impl& im = *impl_;
  PIL_REQUIRE(!im.started, "server already started");
  if (!im.config.access_log.empty())
    im.access = std::make_unique<AccessLog>(im.config.access_log,
                                            im.config.access_log_max_bytes);
  if (!im.config.unix_socket.empty())
    im.unix_fd = im.bind_unix(im.config.unix_socket);
  if (im.config.tcp_port >= 0)
    im.tcp_fd = im.bind_tcp(im.config.tcp_port, im.bound_tcp_port);
  if (im.config.http_port >= 0 || !im.config.http_socket.empty()) {
    StatsHttpServer::Config http_cfg;
    http_cfg.tcp_port = im.config.http_port;
    http_cfg.unix_socket = im.config.http_socket;
    im.http = std::make_unique<StatsHttpServer>(
        http_cfg,
        [&im](const std::string& path) { return im.handle_http(path); });
    im.http->start();
  }
  im.started = true;
  for (int i = 0; i < im.config.workers; ++i)
    im.workers.emplace_back([&im, i] { im.worker_loop(i); });
  im.acceptor = std::thread([&im] { im.accept_loop(); });
  if (im.config.watchdog_grace_seconds > 0 &&
      im.config.watchdog_poll_seconds > 0)
    im.watchdog = std::thread([&im] { im.watchdog_loop(); });
}

void Server::request_shutdown() {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  im.shutdown_requested = true;
  im.stop_cv.notify_all();
}

void Server::wait_for_shutdown() {
  Impl& im = *impl_;
  std::unique_lock<std::mutex> lock(im.mu);
  im.stop_cv.wait(lock,
                  [&] { return im.shutdown_requested || im.stopping; });
}

void Server::stop() {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    if (im.stopping) {
      // Best effort double-stop protection; joins below are idempotent
      // because the first stop() cleared the thread objects.
      return;
    }
    im.stopping = true;
    im.stop_cv.notify_all();
    im.queue_cv.notify_all();
    im.space_cv.notify_all();
  }
  // The stats endpoint goes first -- scrapes of a stopping server would
  // only observe teardown.
  if (im.http != nullptr) im.http->stop();
  // Unblock the acceptor, then the connection readers.
  if (im.unix_fd >= 0) ::shutdown(im.unix_fd, SHUT_RDWR);
  if (im.tcp_fd >= 0) ::shutdown(im.tcp_fd, SHUT_RDWR);
  close_fd(im.unix_fd);
  close_fd(im.tcp_fd);
  if (im.acceptor.joinable()) im.acceptor.join();
  if (im.watchdog.joinable()) im.watchdog.join();
  {
    std::lock_guard<std::mutex> lock(im.conns_mu);
    for (auto& c : im.conns)
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
  }
  // Workers drain whatever is queued (each queued job has a connection
  // thread waiting on its future), then exit on empty queue + stopping.
  im.queue_cv.notify_all();
  for (std::thread& t : im.workers)
    if (t.joinable()) t.join();
  im.workers.clear();
  for (;;) {
    std::unique_ptr<Impl::Conn> conn;
    {
      std::lock_guard<std::mutex> lock(im.conns_mu);
      if (im.conns.empty()) break;
      conn = std::move(im.conns.back());
      im.conns.pop_back();
    }
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (!im.config.unix_socket.empty())
    ::unlink(im.config.unix_socket.c_str());
}

int Server::tcp_port() const { return impl_->bound_tcp_port; }

int Server::http_port() const {
  return impl_->http != nullptr ? impl_->http->tcp_port() : -1;
}

std::string Server::slo_json() const { return impl_->slo_json(); }

const ServerConfig& Server::config() const { return impl_->config; }

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  ServerStats snap = impl_->counters;
  snap.sessions_open = static_cast<int>(impl_->sessions.size());
  snap.queue_depth = static_cast<int>(impl_->queue.size());
  return snap;
}

}  // namespace pil::service
