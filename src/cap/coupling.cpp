#include "pil/cap/coupling.hpp"

#include <cmath>

namespace pil::cap {

const char* to_string(FillStyle s) {
  switch (s) {
    case FillStyle::kFloating: return "floating";
    case FillStyle::kGrounded: return "grounded";
  }
  return "?";
}

const std::vector<double>& ColumnCapLut::table(double d_um, int capacity) {
  PIL_REQUIRE(capacity >= 0, "negative column capacity");
  const long long qd = static_cast<long long>(std::llround(d_um * 1e6));
  const auto key = std::make_pair(qd, capacity);
  auto it = tables_.find(key);
  if (it != tables_.end()) return it->second;

  std::vector<double> vals(static_cast<std::size_t>(capacity) + 1, 0.0);
  for (int n = 1; n <= capacity; ++n)
    vals[n] = model_.column_delta_cap_ff(n, feature_um_, d_um);
  return tables_.emplace(key, std::move(vals)).first->second;
}

}  // namespace pil::cap
