#include "pil/ilp/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "pil/obs/journal.hpp"
#include "pil/util/fault.hpp"
#include "pil/util/log.hpp"

namespace pil::ilp {

namespace {

struct Node {
  double bound = -lp::kInf;  ///< parent LP objective (lower bound on subtree)
  int depth = 0;             ///< branch decisions on the path to this node
  // Bound overrides accumulated along the branch path.
  std::vector<std::pair<int, double>> lo_over;
  std::vector<std::pair<int, double>> hi_over;
  /// Parent's optimal basis: the node's LP differs from the parent's by one
  /// tightened bound, so this basis stays dual feasible and the dual
  /// simplex re-optimizes it in a handful of pivots. Shared across both
  /// children; null = solve cold.
  std::shared_ptr<const lp::Basis> warm;
};

struct NodeOrder {
  bool operator()(const std::shared_ptr<Node>& a,
                  const std::shared_ptr<Node>& b) const {
    return a->bound > b->bound;  // best-bound first (min-heap on bound)
  }
};

/// Most-fractional integer variable; -1 if all integral.
int pick_branch_var(const std::vector<double>& x,
                    const std::vector<bool>& integer, double int_tol) {
  int best = -1;
  double best_frac_dist = int_tol;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (!integer[j]) continue;
    const double f = x[j] - std::floor(x[j]);
    const double dist = std::min(f, 1.0 - f);
    if (dist > best_frac_dist) {
      best_frac_dist = dist;
      best = static_cast<int>(j);
    }
  }
  return best;
}

}  // namespace

const char* to_string(IlpStatus s) {
  switch (s) {
    case IlpStatus::kOptimal: return "optimal";
    case IlpStatus::kInfeasible: return "infeasible";
    case IlpStatus::kNodeLimit: return "node-limit";
    case IlpStatus::kUnbounded: return "unbounded";
    case IlpStatus::kError: return "error";
    case IlpStatus::kDeadline: return "deadline";
  }
  return "?";
}

IlpSolution solve_ilp(const lp::LpProblem& problem,
                      const std::vector<bool>& integer,
                      const IlpOptions& options) {
  PIL_REQUIRE(static_cast<int>(integer.size()) == problem.num_vars(),
              "integrality mask size mismatch");
  for (int j = 0; j < problem.num_vars(); ++j)
    if (integer[j])
      PIL_REQUIRE(std::isfinite(problem.var(j).lo) &&
                      std::isfinite(problem.var(j).hi),
                  "integer variables must have finite bounds");

  IlpSolution best;
  best.status = IlpStatus::kInfeasible;
  double incumbent = lp::kInf;
  bool node_limit_hit = false;
  bool deadline_hit = false;

  // Forward the wall-clock budget into the per-node LP solves so a single
  // long relaxation cannot overshoot the budget by its full runtime.
  lp::SimplexOptions lp_opt = options.lp;
  if (lp_opt.deadline == nullptr) lp_opt.deadline = options.deadline;
  const bool faulty = util::faults_armed();
  const bool journaling = obs::journal_armed();

  // The problem is copied once per LP solve with node bounds applied. The
  // LpProblem is cheap to copy for our sizes; correctness over cleverness.
  std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>,
                      NodeOrder>
      open;
  open.push(std::make_shared<Node>());

  int explored = 0;
  while (!open.empty()) {
    if (explored >= options.max_nodes) {
      node_limit_hit = true;
      break;
    }
    if (options.deadline != nullptr && options.deadline->expired()) {
      deadline_hit = true;
      break;
    }
    if (faulty)
      util::maybe_fault(util::FaultSite::kBbNode,
                        static_cast<std::uint64_t>(explored));
    // Flight-recorder breadcrumb: nodes explored + current incumbent,
    // sampled at stride so a stuck search is attributable post-mortem.
    if (journaling && explored != 0 && (explored & 63) == 0)
      obs::journal_record(obs::JournalEventKind::kBbMilestone, 0, 0,
                          static_cast<std::uint64_t>(explored), incumbent);
    const std::shared_ptr<Node> node = open.top();
    open.pop();
    if (node->bound >= incumbent - options.abs_gap) continue;  // pruned
    ++explored;
    best.max_depth = std::max(best.max_depth, node->depth);

    lp::LpProblem sub = problem;
    bool empty_interval = false;
    for (const auto& [j, lo] : node->lo_over) {
      const double nlo = std::max(sub.var(j).lo, lo);
      if (nlo > sub.var(j).hi) { empty_interval = true; break; }
      sub.set_var_bounds(j, nlo, sub.var(j).hi);
    }
    for (const auto& [j, hi] : node->hi_over) {
      if (empty_interval) break;
      const double nhi = std::min(sub.var(j).hi, hi);
      if (nhi < sub.var(j).lo) { empty_interval = true; break; }
      sub.set_var_bounds(j, sub.var(j).lo, nhi);
    }
    if (empty_interval) continue;  // branch emptied a variable's interval

    // Warm attempt first when a basis hint is available. Warm verdicts
    // carry exact certificates (dual + primal feasibility at optimality,
    // dual unboundedness for infeasibility), so status and objective are
    // the ones the cold solve would produce. What MAY differ is which
    // vertex of a non-unique optimal face the solve lands on: a warm path
    // can stop at an alternate optimum with a different (equally optimal)
    // x. For a *fractional* vertex that only steers branching -- a
    // different, equally valid subtree whose leaves are vetted by the same
    // incumbent test -- so node/solve counts become execution-strategy
    // statistics under warm starting, exactly like iteration counts. An
    // *integral* vertex would be adopted as the node's solution outright,
    // so it is consumed only when provably unique (see the gate below);
    // otherwise the node is re-solved cold and the cold solution consumed.
    // On the reference testcases the fill results are bit-identical to
    // warm_start=false (asserted by the differential tests). A warm
    // attempt that fails to build (stale/mismatched basis) falls back to a
    // cold solve, so warm starting never degrades robustness.
    lp::LpSolution rel;
    bool have_rel = false;
    const lp::Basis* hint = nullptr;
    if (options.warm_start) {
      if (node->warm != nullptr)
        hint = node->warm.get();
      else if (node->depth == 0 && options.warm_basis != nullptr)
        hint = options.warm_basis.get();
    }
    if (hint != nullptr && !hint->empty()) {
      lp::SimplexOptions wopt = lp_opt;
      wopt.warm_basis = hint;
      lp::LpSolution w = lp::solve_lp(sub, wopt);
      best.lp_iterations += w.iterations;
      best.dual_iterations += w.dual_iterations;
      if (w.status == lp::SolveStatus::kDeadline) {
        rel = std::move(w);  // budget gone: no cold re-solve, exit below
        have_rel = true;
      } else if (w.warm_started &&
                 (w.status == lp::SolveStatus::kInfeasible ||
                  (w.status == lp::SolveStatus::kOptimal &&
                   w.unique_optimum))) {
        // Consumed: infeasibility certificates and *unique* optima
        // (strictly positive nonbasic reduced costs prove the vertex is
        // the only optimal solution, hence the very point the cold solve
        // lands on). A tied optimal face is re-solved cold instead: warm
        // could have stopped at an alternate co-optimal vertex, and both
        // adopting it (integral) and branching from it (fractional) have
        // been observed to steer the search to a different -- equally
        // optimal, but not bit-identical -- fill solution.
        rel = std::move(w);
        have_rel = true;
        ++best.warm_starts;
      }
    }
    if (!have_rel) {
      rel = lp::solve_lp(sub, lp_opt);
      best.lp_iterations += rel.iterations;
    }
    ++best.lp_solves;
    if (rel.status == lp::SolveStatus::kDeadline) {
      // Budget ran out mid-relaxation: keep the incumbent found so far and
      // finish as a deadline exit rather than an error.
      best.lp_status = rel.status;
      deadline_hit = true;
      break;
    }
    if (rel.status == lp::SolveStatus::kInfeasible) continue;
    if (rel.status == lp::SolveStatus::kUnbounded) {
      // An unbounded relaxation at the root means the MILP is unbounded or
      // infeasible; we report unbounded (integer vars are bounded, so this
      // can only come from continuous vars).
      best.status = IlpStatus::kUnbounded;
      return best;
    }
    if (rel.status == lp::SolveStatus::kIterLimit) {
      best.status = IlpStatus::kError;
      best.lp_status = rel.status;
      best.nodes_explored = explored;
      return best;
    }
    if (node->depth == 0 && !rel.basis.empty())
      best.root_basis = std::make_shared<const lp::Basis>(rel.basis);
    if (rel.objective >= incumbent - options.abs_gap) continue;

    const int bv = pick_branch_var(rel.x, integer, options.int_tol);
    if (bv < 0) {
      // Integral: new incumbent.
      ++best.incumbent_updates;
      incumbent = rel.objective;
      best.objective = rel.objective;
      best.x = rel.x;
      for (int j = 0; j < problem.num_vars(); ++j)
        if (integer[j]) best.x[j] = std::round(best.x[j]);
      best.status = IlpStatus::kOptimal;
      continue;
    }

    const double xv = rel.x[bv];
    // Both children differ from this relaxation by one tightened bound:
    // hand them its basis for dual re-optimization. (The acceptance test
    // above decides separately whether a child's *result* may be consumed.)
    std::shared_ptr<const lp::Basis> child_hint;
    if (options.warm_start)
      child_hint = std::make_shared<const lp::Basis>(rel.basis);
    auto down = std::make_shared<Node>(*node);
    down->bound = rel.objective;
    down->depth = node->depth + 1;
    down->hi_over.emplace_back(bv, std::floor(xv));
    down->warm = child_hint;
    auto up = std::make_shared<Node>(*node);
    up->bound = rel.objective;
    up->depth = node->depth + 1;
    up->lo_over.emplace_back(bv, std::ceil(xv));
    up->warm = child_hint;
    open.push(std::move(down));
    open.push(std::move(up));
  }

  best.nodes_explored = explored;
  // A truncated search (node budget or wall clock) demotes the provisional
  // status: the incumbent, if any, is kept but optimality is not proven.
  if (node_limit_hit || deadline_hit) {
    if (best.status == IlpStatus::kOptimal ||
        best.status == IlpStatus::kInfeasible)
      best.status = deadline_hit ? IlpStatus::kDeadline
                                 : IlpStatus::kNodeLimit;
  }
  // Final bound: with the search exhausted the incumbent is proven; when
  // the budget cut the search off, the best open node bounds what an
  // exhaustive search could still improve.
  best.best_bound = best.objective;
  if ((node_limit_hit || deadline_hit) && !open.empty())
    best.best_bound = std::min(best.objective, open.top()->bound);
  return best;
}

}  // namespace pil::ilp
