#include "pil/cmp/cmp_model.hpp"

#include <algorithm>
#include <cmath>

#include "pil/util/log.hpp"

namespace pil::cmp {

namespace {

/// Separable 1-D Gaussian convolution along x then y. Boundary handling is
/// by renormalization: the caller divides by the same kernel applied to an
/// all-ones field, so cells near the die edge average only over real cells.
void convolve_separable(std::vector<double>& field, int nx, int ny,
                        const std::vector<double>& kernel) {
  const int radius = static_cast<int>(kernel.size()) / 2;
  std::vector<double> tmp(field.size(), 0.0);
  // x pass
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      double acc = 0.0;
      for (int k = -radius; k <= radius; ++k) {
        const int xx = x + k;
        if (xx < 0 || xx >= nx) continue;
        acc += kernel[k + radius] *
               field[static_cast<std::size_t>(y) * nx + xx];
      }
      tmp[static_cast<std::size_t>(y) * nx + x] = acc;
    }
  }
  // y pass
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      double acc = 0.0;
      for (int k = -radius; k <= radius; ++k) {
        const int yy = y + k;
        if (yy < 0 || yy >= ny) continue;
        acc += kernel[k + radius] *
               tmp[static_cast<std::size_t>(yy) * nx + x];
      }
      field[static_cast<std::size_t>(y) * nx + x] = acc;
    }
  }
}

}  // namespace

CmpResult simulate_cmp(const grid::DensityMap& density,
                       const CmpModelConfig& config) {
  PIL_REQUIRE(config.planarization_length_um > 0 && config.cell_um > 0 &&
                  config.step_height_um > 0,
              "CMP model parameters must be positive");
  const grid::Dissection& dis = density.dissection();
  const geom::Rect die = dis.die();

  CmpResult res;
  res.cell_um = config.cell_um;
  res.nx = std::max(1, static_cast<int>(std::ceil(die.width() / config.cell_um -
                                                  geom::kEps)));
  res.ny = std::max(1, static_cast<int>(std::ceil(die.height() / config.cell_um -
                                                  geom::kEps)));

  // Per-cell raw density: area-weighted average of the tile densities the
  // cell overlaps.
  std::vector<double> rho(static_cast<std::size_t>(res.nx) * res.ny, 0.0);
  for (int cy = 0; cy < res.ny; ++cy) {
    for (int cx = 0; cx < res.nx; ++cx) {
      const geom::Rect cell{
          die.xlo + cx * config.cell_um, die.ylo + cy * config.cell_um,
          std::min(die.xlo + (cx + 1) * config.cell_um, die.xhi),
          std::min(die.ylo + (cy + 1) * config.cell_um, die.yhi)};
      if (cell.area() <= 0) continue;
      grid::TileIndex lo, hi;
      if (!dis.tiles_overlapping(cell, lo, hi)) continue;
      double area_sum = 0.0;
      for (int iy = lo.iy; iy <= hi.iy; ++iy) {
        for (int ix = lo.ix; ix <= hi.ix; ++ix) {
          const geom::Rect tile = dis.tile_rect({ix, iy});
          const double ov = geom::overlap_area(cell, tile);
          if (ov <= 0 || tile.area() <= 0) continue;
          area_sum += ov * density.tile_area({ix, iy}) / tile.area();
        }
      }
      rho[static_cast<std::size_t>(cy) * res.nx + cx] = area_sum / cell.area();
    }
  }

  // Gaussian kernel with sigma = L/2, truncated at 3 sigma.
  const double sigma_cells =
      config.planarization_length_um / 2.0 / config.cell_um;
  const int radius = std::max(1, static_cast<int>(std::ceil(3 * sigma_cells)));
  std::vector<double> kernel(2 * radius + 1);
  for (int k = -radius; k <= radius; ++k)
    kernel[k + radius] = std::exp(-0.5 * (k / sigma_cells) * (k / sigma_cells));

  std::vector<double> ones(rho.size(), 1.0);
  convolve_separable(rho, res.nx, res.ny, kernel);
  convolve_separable(ones, res.nx, res.ny, kernel);
  res.effective_density.resize(rho.size());
  for (std::size_t i = 0; i < rho.size(); ++i)
    res.effective_density[i] = rho[i] / ones[i];

  // Residual thickness: proportional to the effective-density variation.
  const auto [mn_it, mx_it] = std::minmax_element(
      res.effective_density.begin(), res.effective_density.end());
  res.thickness_um.resize(rho.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < rho.size(); ++i) {
    res.thickness_um[i] =
        config.step_height_um * (res.effective_density[i] - *mn_it);
    sum += res.thickness_um[i];
  }
  res.max_thickness_range_um = config.step_height_um * (*mx_it - *mn_it);
  const double mean = sum / static_cast<double>(rho.size());
  double sq = 0.0;
  for (const double t : res.thickness_um) sq += (t - mean) * (t - mean);
  res.rms_thickness_um = std::sqrt(sq / static_cast<double>(rho.size()));
  return res;
}

std::string render_thickness_ascii(const CmpResult& result) {
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = static_cast<int>(sizeof(kRamp)) - 2;
  const double hi = std::max(result.max_thickness_range_um, 1e-12);
  std::string out;
  for (int iy = result.ny - 1; iy >= 0; --iy) {
    for (int ix = 0; ix < result.nx; ++ix) {
      const double t = result.at(ix, iy) / hi;
      out.push_back(
          kRamp[std::clamp(static_cast<int>(t * kLevels + 0.5), 0, kLevels)]);
    }
    out.push_back('\n');
  }
  return out;
}

ErosionReport erosion_delay_report(const std::vector<rctree::RcTree>& trees,
                                   const layout::Layout& layout,
                                   const CmpResult& cmp,
                                   const ErosionModelConfig& config) {
  PIL_REQUIRE(config.reference_density > 0 && config.loss_coeff_um >= 0 &&
                  config.max_loss_fraction > 0 && config.max_loss_fraction < 1,
              "bad erosion model parameters");
  const geom::Rect die = layout.die();

  auto rho_at = [&](const geom::Point& p) {
    int ix = static_cast<int>((p.x - die.xlo) / cmp.cell_um);
    int iy = static_cast<int>((p.y - die.ylo) / cmp.cell_um);
    ix = std::clamp(ix, 0, cmp.nx - 1);
    iy = std::clamp(iy, 0, cmp.ny - 1);
    return cmp.effective_density[static_cast<std::size_t>(iy) * cmp.nx + ix];
  };

  ErosionReport report;
  report.nominal_worst_delay_ps.reserve(trees.size());
  report.eroded_worst_delay_ps.reserve(trees.size());

  for (const rctree::RcTree& tree : trees) {
    const auto& nodes = tree.nodes();
    const int n = static_cast<int>(nodes.size());

    // Per-node edge resistance scale from the thinning at the owning
    // piece's midpoint.
    std::vector<double> scale(n, 1.0);
    for (const rctree::WirePiece& piece : tree.pieces()) {
      const geom::Point mid{(piece.up.x + piece.down.x) / 2,
                            (piece.up.y + piece.down.y) / 2};
      const double thickness = layout.layer(piece.layer).thickness_um;
      const double deficit =
          std::max(0.0, config.reference_density - rho_at(mid));
      const double loss = std::min(config.loss_coeff_um * deficit,
                                   config.max_loss_fraction * thickness);
      scale[piece.down_node] = thickness / (thickness - loss);
    }

    // Elmore with scaled resistances: tau(child) = tau(parent) +
    // scale * R_edge * C_subtree(child). Nodes are in BFS order (parents
    // precede children), so two linear passes suffice.
    std::vector<double> subtree_cap(n, 0.0);
    for (int i = 0; i < n; ++i) subtree_cap[i] = nodes[i].cap_ff;
    for (int i = n - 1; i >= 1; --i)
      subtree_cap[nodes[i].parent] += subtree_cap[i];
    std::vector<double> elmore(n, 0.0);
    // The driver resistance does not erode.
    const double rdrv =
        n > 0 ? nodes[0].upstream_res : 0.0;
    if (n > 0) elmore[0] = rdrv * subtree_cap[0] * 1e-3;
    for (int i = 1; i < n; ++i)
      elmore[i] = elmore[nodes[i].parent] +
                  scale[i] * nodes[i].res_to_parent * subtree_cap[i] * 1e-3;

    double nominal = 0.0, eroded = 0.0;
    for (int s = 0; s < tree.num_sinks(); ++s) {
      nominal = std::max(nominal, tree.sink_delay_ps(s));
      eroded = std::max(eroded, elmore[tree.sink_node(s)]);
    }
    report.nominal_worst_delay_ps.push_back(nominal);
    report.eroded_worst_delay_ps.push_back(eroded);
    const double inc = eroded - nominal;
    report.total_delay_increase_ps += inc;
    report.worst_net_increase_ps =
        std::max(report.worst_net_increase_ps, inc);
  }
  return report;
}

}  // namespace pil::cmp
