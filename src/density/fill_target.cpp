#include "pil/density/fill_target.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "pil/lp/simplex.hpp"
#include "pil/simd/simd.hpp"
#include "pil/util/log.hpp"
#include "pil/util/rng.hpp"

namespace pil::density {

namespace {

using grid::Dissection;
using grid::DensityMap;
using grid::TileIndex;

grid::DensityStats stats_with_fill(const DensityMap& wires,
                                   const std::vector<int>& features,
                                   double feature_area) {
  const Dissection& dis = wires.dissection();
  DensityMap after = wires;
  for (int flat = 0; flat < dis.num_tiles(); ++flat)
    after.add_area(dis.tile_unflat(flat), features[flat] * feature_area);
  return after.stats();
}

void resolve_targets(const grid::DensityStats& before, const Dissection& dis,
                     double feature_area, FillTargetConfig cfg, double& L,
                     double& U) {
  L = cfg.lower_target >= 0 ? cfg.lower_target : before.max_density;
  const double win_area = dis.window_um() * dis.window_um();
  U = cfg.upper_bound >= 0 ? cfg.upper_bound
                           : std::max(L, before.max_density) +
                                 2 * feature_area / win_area;
  PIL_REQUIRE(U >= L, "upper bound below lower target");
}

}  // namespace

FillTargetResult compute_fill_amounts_mc(const DensityMap& wires,
                                         const std::vector<int>& tile_capacity,
                                         const fill::FillRules& rules,
                                         const FillTargetConfig& config) {
  const Dissection& dis = wires.dissection();
  PIL_REQUIRE(static_cast<int>(tile_capacity.size()) == dis.num_tiles(),
              "capacity vector size mismatch");
  rules.validate();
  const double fa = rules.feature_area();

  FillTargetResult res;
  res.before = wires.stats();
  double L, U;
  resolve_targets(res.before, dis, fa, config, L, U);
  res.lower_target_used = L;
  res.upper_bound_used = U;

  const int nwx = dis.windows_x();
  const int nwy = dis.windows_y();
  const double win_area = dis.window_um() * dis.window_um();

  const simd::Kernels& K = simd::kernels();

  // Current window feature areas (wires + fill added so far), computed
  // blockwise in window_area()'s accumulation order.
  std::vector<double> warea(static_cast<std::size_t>(nwx) * nwy);
  K.window_sums(wires.tile_areas().data(), dis.tiles_x(), dis.tiles_y(),
                dis.r(), warea.data());

  std::vector<int> remaining = tile_capacity;
  res.features_per_tile.assign(dis.num_tiles(), 0);
  std::vector<bool> stuck(warea.size(), false);

  // Min-heap of (density, window) with lazy staleness handling.
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t w = 0; w < warea.size(); ++w)
    heap.emplace(warea[w] / win_area, static_cast<int>(w));

  Rng rng(config.seed);
  std::vector<int> candidates;

  while (!heap.empty()) {
    const auto [dens, w] = heap.top();
    heap.pop();
    if (stuck[w]) continue;
    const double current = warea[w] / win_area;
    if (current > dens + 1e-15) {  // stale entry; reinsert fresh
      heap.emplace(current, w);
      continue;
    }
    if (current >= L - 1e-12) break;  // minimum reached the target

    const int wx = w % nwx;
    const int wy = w / nwx;
    // Candidate tiles: slack capacity left and all covering windows stay
    // <= U. The covering windows form a contiguous block of warea rows, so
    // the feasibility test and the area update run as block kernels; the
    // hoisted threshold equals the per-check expression exactly.
    const double threshold = U * win_area + 1e-12;
    candidates.clear();
    for (int iy = wy; iy < wy + dis.r(); ++iy) {
      for (int ix = wx; ix < wx + dis.r(); ++ix) {
        if (ix >= dis.tiles_x() || iy >= dis.tiles_y()) continue;
        const int flat = dis.tile_flat(TileIndex{ix, iy});
        if (remaining[flat] <= 0) continue;
        const bool ok = !K.block_any_above(
            warea.data(), nwx, std::max(0, ix - dis.r() + 1),
            std::min(nwx - 1, ix), std::max(0, iy - dis.r() + 1),
            std::min(nwy - 1, iy), fa, threshold);
        if (ok) candidates.push_back(flat);
      }
    }
    if (candidates.empty()) {
      stuck[w] = true;  // cannot improve this window any further
      continue;
    }
    const int flat = candidates[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
    remaining[flat] -= 1;
    res.features_per_tile[flat] += 1;
    ++res.total_features;
    const TileIndex t = dis.tile_unflat(flat);
    K.block_add_scalar(warea.data(), nwx, std::max(0, t.ix - dis.r() + 1),
                       std::min(nwx - 1, t.ix), std::max(0, t.iy - dis.r() + 1),
                       std::min(nwy - 1, t.iy), fa);
    heap.emplace(warea[w] / win_area, w);
  }

  res.after = stats_with_fill(wires, res.features_per_tile, fa);
  PIL_INFO("fill target (MC): " << res.total_features << " features, window "
           << "density " << res.before.min_density << ".." << res.before.max_density
           << " -> " << res.after.min_density << ".." << res.after.max_density);
  return res;
}

FillTargetResult compute_fill_amounts_lp(const DensityMap& wires,
                                         const std::vector<int>& tile_capacity,
                                         const fill::FillRules& rules,
                                         const FillTargetConfig& config) {
  const Dissection& dis = wires.dissection();
  PIL_REQUIRE(static_cast<int>(tile_capacity.size()) == dis.num_tiles(),
              "capacity vector size mismatch");
  rules.validate();
  const double fa = rules.feature_area();

  FillTargetResult res;
  res.before = wires.stats();
  double L, U;
  resolve_targets(res.before, dis, fa, config, L, U);
  res.lower_target_used = L;
  res.upper_bound_used = U;

  const int nwx = dis.windows_x();
  const int nwy = dis.windows_y();
  const double win_area = dis.window_um() * dis.window_um();

  // Variables: fill area a_T per tile in [0, cap_T * fa]; plus M (the
  // minimum window density, to be maximized but capped at L -- pushing past
  // L is pointless and keeps the LP bounded).
  lp::LpProblem prob;
  std::vector<int> tile_var(dis.num_tiles());
  for (int flat = 0; flat < dis.num_tiles(); ++flat)
    tile_var[flat] = prob.add_var(0.0, tile_capacity[flat] * fa, 0.0);
  const int m_var = prob.add_var(0.0, L, -1.0);  // minimize -M

  for (int wy = 0; wy < nwy; ++wy) {
    for (int wx = 0; wx < nwx; ++wx) {
      std::vector<lp::RowEntry> entries;
      for (int iy = wy; iy < wy + dis.r(); ++iy)
        for (int ix = wx; ix < wx + dis.r(); ++ix)
          entries.push_back(
              {tile_var[dis.tile_flat(TileIndex{ix, iy})], 1.0});
      const double worig = wires.window_area(wx, wy);
      // wire + fill >= M * win_area   <=>   fill - win_area*M >= -wire
      auto ge = entries;
      ge.push_back({m_var, -win_area});
      prob.add_row(lp::Sense::kGe, -worig, std::move(ge));
      // wire + fill <= U * win_area
      prob.add_row(lp::Sense::kLe, U * win_area - worig, std::move(entries));
    }
  }

  const lp::LpSolution sol = lp::solve_lp(prob);
  PIL_REQUIRE(sol.status == lp::SolveStatus::kOptimal,
              std::string("min-var fill LP failed: ") + to_string(sol.status));

  res.features_per_tile.assign(dis.num_tiles(), 0);
  for (int flat = 0; flat < dis.num_tiles(); ++flat) {
    int m = static_cast<int>(std::floor(sol.x[tile_var[flat]] / fa + 0.5));
    m = std::clamp(m, 0, tile_capacity[flat]);
    res.features_per_tile[flat] = m;
    res.total_features += m;
  }
  res.after = stats_with_fill(wires, res.features_per_tile, fa);
  PIL_INFO("fill target (LP): " << res.total_features << " features, M = "
                                << sol.x[m_var]);
  return res;
}

FillTargetResult compute_fill_amounts_min_fill_lp(
    const DensityMap& wires, const std::vector<int>& tile_capacity,
    const fill::FillRules& rules, const FillTargetConfig& config) {
  const Dissection& dis = wires.dissection();
  PIL_REQUIRE(static_cast<int>(tile_capacity.size()) == dis.num_tiles(),
              "capacity vector size mismatch");
  rules.validate();
  const double fa = rules.feature_area();

  FillTargetResult res;
  res.before = wires.stats();
  double L, U;
  resolve_targets(res.before, dis, fa, config, L, U);

  // Feasibility: L can never exceed what min-var fill could reach; solve
  // the min-var LP first and clamp.
  {
    FillTargetConfig probe = config;
    const FillTargetResult minvar =
        compute_fill_amounts_lp(wires, tile_capacity, rules, probe);
    L = std::min(L, minvar.after.min_density);
  }
  res.lower_target_used = L;
  res.upper_bound_used = U;

  const int nwx = dis.windows_x();
  const int nwy = dis.windows_y();
  const double win_area = dis.window_um() * dis.window_um();

  // Variables: fill area per tile; minimize their sum.
  lp::LpProblem prob;
  std::vector<int> tile_var(dis.num_tiles());
  for (int flat = 0; flat < dis.num_tiles(); ++flat)
    tile_var[flat] = prob.add_var(0.0, tile_capacity[flat] * fa, 1.0);
  for (int wy = 0; wy < nwy; ++wy) {
    for (int wx = 0; wx < nwx; ++wx) {
      std::vector<lp::RowEntry> entries;
      for (int iy = wy; iy < wy + dis.r(); ++iy)
        for (int ix = wx; ix < wx + dis.r(); ++ix)
          entries.push_back({tile_var[dis.tile_flat(TileIndex{ix, iy})], 1.0});
      const double worig = wires.window_area(wx, wy);
      auto ge = entries;
      prob.add_row(lp::Sense::kGe, L * win_area - worig, std::move(ge));
      prob.add_row(lp::Sense::kLe, U * win_area - worig, std::move(entries));
    }
  }

  const lp::LpSolution sol = lp::solve_lp(prob);
  PIL_REQUIRE(sol.status == lp::SolveStatus::kOptimal,
              std::string("min-fill LP failed: ") + to_string(sol.status));

  res.features_per_tile.assign(dis.num_tiles(), 0);
  for (int flat = 0; flat < dis.num_tiles(); ++flat) {
    // Round UP so the density floor survives quantization, capacity
    // permitting.
    int m = static_cast<int>(std::ceil(sol.x[tile_var[flat]] / fa - 1e-9));
    m = std::clamp(m, 0, tile_capacity[flat]);
    res.features_per_tile[flat] = m;
    res.total_features += m;
  }
  res.after = stats_with_fill(wires, res.features_per_tile, fa);
  PIL_INFO("fill target (min-fill LP): " << res.total_features
                                         << " features, floor " << L);
  return res;
}

}  // namespace pil::density
