#include "pil/pilfill/anneal.hpp"

#include <algorithm>
#include <cmath>

#include "pil/util/log.hpp"
#include "pil/util/stopwatch.hpp"

namespace pil::pilfill {

namespace {

/// Incremental global-objective state. Per-part counts are the decision
/// variables; costs are charged per GLOBAL column on the total count across
/// parts, so cross-tile recombination is priced exactly.
class GlobalState {
 public:
  GlobalState(const std::vector<TileInstance>& instances,
              const fill::SlackColumns& global, const SolverContext& ctx)
      : instances_(&instances), ctx_(&ctx) {
    const auto& cols = global.columns();
    col_total_.assign(cols.size(), 0);
    col_rf_.assign(cols.size(), 0.0);
    col_table_.resize(cols.size());
    part_counts_.resize(instances.size());
    for (std::size_t i = 0; i < instances.size(); ++i)
      part_counts_[i].assign(instances[i].cols.size(), 0);
    // Resistance factors / cost tables, built lazily for touched columns.
    for (std::size_t i = 0; i < instances.size(); ++i) {
      for (const InstanceColumn& c : instances[i].cols) {
        if (!c.two_sided || !col_table_[c.column].empty()) continue;
        col_rf_[c.column] = ctx.objective == Objective::kWeighted
                                ? c.res_weighted
                                : c.res_nonweighted;
        col_table_[c.column] =
            column_cost_table(ctx, cols[c.column].gap_um,
                              cols[c.column].capacity);
      }
    }
  }

  /// Install per-part counts (e.g. the per-tile convex solution).
  void set_counts(const std::vector<std::vector<int>>& counts) {
    total_cost_ = 0.0;
    std::fill(col_total_.begin(), col_total_.end(), 0);
    part_counts_ = counts;
    for (std::size_t i = 0; i < counts.size(); ++i)
      for (std::size_t k = 0; k < counts[i].size(); ++k)
        col_total_[(*instances_)[i].cols[k].column] += counts[i][k];
    for (std::size_t c = 0; c < col_total_.size(); ++c)
      total_cost_ += column_cost(static_cast<int>(c), col_total_[c]);
  }

  double total_cost_ps() const { return total_cost_ * 1e-3; }
  const std::vector<std::vector<int>>& part_counts() const {
    return part_counts_;
  }
  int part_count(std::size_t inst, std::size_t k) const {
    return part_counts_[inst][k];
  }

  /// Cost change (ohm*fF) of moving one feature from part `from` of
  /// instance `src` to part `to` of instance `dst` (src may equal dst).
  /// Caller guarantees `from` has a feature and `to` has a free site.
  double move_delta_between(std::size_t src, int from, std::size_t dst,
                            int to) const {
    const int cf = (*instances_)[src].cols[from].column;
    const int ct = (*instances_)[dst].cols[to].column;
    if (cf == ct) return 0.0;
    return column_cost(cf, col_total_[cf] - 1) -
           column_cost(cf, col_total_[cf]) +
           column_cost(ct, col_total_[ct] + 1) -
           column_cost(ct, col_total_[ct]);
  }

  void apply_move_between(std::size_t src, int from, std::size_t dst,
                          int to) {
    total_cost_ += move_delta_between(src, from, dst, to);
    const int cf = (*instances_)[src].cols[from].column;
    const int ct = (*instances_)[dst].cols[to].column;
    col_total_[cf] -= 1;
    col_total_[ct] += 1;
    part_counts_[src][from] -= 1;
    part_counts_[dst][to] += 1;
  }

 private:
  double column_cost(int col, int m) const {
    if (m <= 0 || col_table_[col].empty()) return 0.0;
    PIL_ASSERT(m < static_cast<int>(col_table_[col].size()),
               "column total exceeds global capacity");
    return col_table_[col][m] * col_rf_[col];
  }

  const std::vector<TileInstance>* instances_;
  const SolverContext* ctx_;
  std::vector<std::vector<int>> part_counts_;
  std::vector<int> col_total_;       // per global column
  std::vector<double> col_rf_;       // resistance factor per global column
  std::vector<std::vector<double>> col_table_;  // cost table per column
  double total_cost_ = 0.0;          // ohm*fF
};

}  // namespace

AnnealFlowResult run_annealed_pil_fill_flow(const layout::Layout& layout,
                                            const FlowConfig& config,
                                            const AnnealConfig& anneal) {
  PIL_REQUIRE(config.style == cap::FillStyle::kFloating,
              "annealing requires the convex floating model");
  PIL_REQUIRE(anneal.moves_per_feature >= 0 && anneal.initial_temp_frac >= 0,
              "bad anneal configuration");
  PIL_REQUIRE(config.solver_mode == fill::SlackMode::kIII,
              "annealing prices whole gaps; use SlackColumn-III");

  // Reuse the per-tile flow for prep + the convex starting placement (the
  // counts are recomputed below; only the target spec is consumed here).
  const FlowResult base =
      run_pil_fill_flow(layout, config, {Method::kConvex});

  // Rebuild the shared context the flow used (cheap relative to the solve).
  const layout::Layer& layer = layout.layer(config.layer);
  const grid::Dissection dis(layout.die(), config.window_um, config.r);
  const auto trees = rctree::build_all_trees(layout);
  const auto pieces = fill::flatten_pieces(trees);
  const fill::SlackColumns global = fill::extract_slack_columns(
      layout, dis, pieces, config.layer, config.rules, fill::SlackMode::kIII);
  const cap::CouplingModel model(layer.eps_r, layer.thickness_um);
  cap::ColumnCapLut lut(model, config.rules.feature_um);
  SolverContext ctx;
  ctx.model = &model;
  ctx.lut = &lut;
  ctx.rules = config.rules;
  ctx.objective = config.objective;
  ctx.switch_factor = config.switch_factor;

  // Instances for EVERY tile with slack (zero-requirement tiles are legal
  // move destinations as long as the window band allows it).
  std::vector<TileInstance> instances;
  for (int t = 0; t < dis.num_tiles(); ++t) {
    if (global.tile_parts(t).empty()) continue;
    instances.push_back(build_tile_instance(
        t, base.target.features_per_tile[t], global, pieces,
        config.net_criticality));
  }

  // Starting counts: the per-tile convex solution (deterministic, matches
  // `start`); zero-requirement tiles start empty.
  Stopwatch watch;
  std::vector<std::vector<int>> counts(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (instances[i].required > 0)
      counts[i] = solve_tile_convex(instances[i], ctx).counts;
    else
      counts[i].assign(instances[i].cols.size(), 0);
  }

  GlobalState state(instances, global, ctx);
  state.set_counts(counts);

  AnnealFlowResult result;
  result.target = base.target;
  result.initial_cost_ps = state.total_cost_ps();

  // Window-density accounting (site-based, matching the targeter): wires
  // plus fa per placed feature, bucketed by the feature's tile.
  grid::DensityMap wires(dis);
  wires.add_layer_wires(layout, config.layer);
  const int nwx = dis.windows_x();
  const int nwy = dis.windows_y();
  const double fa = config.rules.feature_area();
  std::vector<double> warea(static_cast<std::size_t>(nwx) * nwy);
  std::vector<double> winarea(warea.size());
  for (int wy = 0; wy < nwy; ++wy) {
    for (int wx = 0; wx < nwx; ++wx) {
      const std::size_t w = static_cast<std::size_t>(wy) * nwx + wx;
      warea[w] = wires.window_area(wx, wy);
      winarea[w] = dis.window_rect(wx, wy).area();
    }
  }
  // Windows covering each instance's tile.
  std::vector<std::vector<int>> tile_windows(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const grid::TileIndex t = dis.tile_unflat(instances[i].tile_flat);
    const int wx_lo = std::max(0, t.ix - dis.r() + 1);
    const int wx_hi = std::min(nwx - 1, t.ix);
    const int wy_lo = std::max(0, t.iy - dis.r() + 1);
    const int wy_hi = std::min(nwy - 1, t.iy);
    for (int wy = wy_lo; wy <= wy_hi; ++wy)
      for (int wx = wx_lo; wx <= wx_hi; ++wx)
        tile_windows[i].push_back(wy * nwx + wx);
    for (const int w : tile_windows[i])
      warea[w] += instances[i].required * fa;
  }
  // Density band: never regress below the achieved floor (minus the
  // configured slack); never exceed the targeter's cap.
  double floor_density = 1.0;
  for (std::size_t w = 0; w < warea.size(); ++w)
    floor_density = std::min(floor_density, warea[w] / winarea[w]);
  const double floor_slack = anneal.floor_slack_features * fa;
  const double cap_density = base.target.upper_bound_used;

  auto can_give = [&](std::size_t i) {
    for (const int w : tile_windows[i])
      if ((warea[w] - fa) / winarea[w] <
          floor_density - floor_slack / winarea[w] - 1e-12)
        return false;
    return true;
  };
  auto can_take = [&](std::size_t i) {
    for (const int w : tile_windows[i])
      if ((warea[w] + fa) / winarea[w] > cap_density + 1e-12) return false;
    return true;
  };

  // Anneal: intra-tile shuffles plus window-feasible inter-tile moves.
  Rng rng(anneal.seed ^ 0xA11EA1u);
  long long total_features = 0;
  for (const auto& c : counts)
    for (const int m : c) total_features += m;
  const long long budget = anneal.moves_per_feature * total_features;
  double temp = anneal.initial_temp_frac *
                (total_features > 0
                     ? state.total_cost_ps() * 1e3 / total_features
                     : 0.0);
  const double cool =
      budget > 0 && temp > 0 ? std::pow(0.01, 1.0 / budget) : 1.0;

  // Snapshotting every improvement would dominate the runtime (the state is
  // thousands of ints); snapshot sparingly and reconcile with the final
  // state after the loop -- cooling ends in pure descent, so the final
  // state is at or near the best seen.
  std::vector<std::vector<int>> best = state.part_counts();
  double best_cost = state.total_cost_ps();
  double snapshot_cost = best_cost;
  long long improvements = 0;

  auto random_part_with_feature = [&](std::size_t i, int& part) {
    const auto& pc = state.part_counts()[i];
    int tries = 8;
    while (tries--) {
      const int k = static_cast<int>(rng.uniform_int(0, pc.size() - 1));
      if (pc[k] > 0) {
        part = k;
        return true;
      }
    }
    return false;
  };
  auto random_part_with_space = [&](std::size_t i, int& part) {
    const auto& pc = state.part_counts()[i];
    int tries = 8;
    while (tries--) {
      const int k = static_cast<int>(rng.uniform_int(0, pc.size() - 1));
      if (pc[k] < instances[i].cols[k].num_sites) {
        part = k;
        return true;
      }
    }
    return false;
  };

  for (long long it = 0; it < budget; ++it, temp *= cool) {
    const bool inter = rng.uniform01() < anneal.inter_tile_fraction;
    const std::size_t src = rng.uniform_int(0, instances.size() - 1);
    const std::size_t dst =
        inter ? static_cast<std::size_t>(
                    rng.uniform_int(0, instances.size() - 1))
              : src;
    if (inter && dst == src) continue;
    int from, to;
    if (!random_part_with_feature(src, from)) continue;
    if (!random_part_with_space(dst, to)) continue;
    if (src == dst && from == to) continue;
    if (inter && (!can_give(src) || !can_take(dst))) continue;
    ++result.moves_tried;
    const double delta = state.move_delta_between(src, from, dst, to);
    const bool accept =
        delta <= 0 ||
        (temp > 0 && rng.uniform01() < std::exp(-delta * 1e-3 / temp));
    if (!accept) continue;
    state.apply_move_between(src, from, dst, to);
    if (inter) {
      for (const int w : tile_windows[src]) warea[w] -= fa;
      for (const int w : tile_windows[dst]) warea[w] += fa;
    }
    ++result.moves_accepted;
    if (state.total_cost_ps() < best_cost - 1e-15) {
      best_cost = state.total_cost_ps();
      if (++improvements % 64 == 0 || best_cost < 0.99 * snapshot_cost) {
        best = state.part_counts();
        snapshot_cost = best_cost;
      }
    }
  }
  if (state.total_cost_ps() <= snapshot_cost) {
    best = state.part_counts();
    result.final_cost_ps = state.total_cost_ps();
  } else {
    result.final_cost_ps = snapshot_cost;
  }
  result.solve_seconds = watch.seconds();

  // Materialize the best placement and score it with the standard evaluator.
  result.features_per_tile.assign(dis.num_tiles(), 0);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    int placed = 0;
    for (std::size_t k = 0; k < instances[i].cols.size(); ++k) {
      const InstanceColumn& ic = instances[i].cols[k];
      const fill::SlackColumn& col = global.columns()[ic.column];
      for (int s = 0; s < best[i][k]; ++s)
        result.features.push_back(
            global.site_rect(col, ic.first_site + s, config.rules));
      placed += best[i][k];
    }
    result.features_per_tile[instances[i].tile_flat] = placed;
  }
  EvaluatorOptions eval_options;
  eval_options.style = config.style;
  eval_options.switch_factor = config.switch_factor;
  const DelayImpactEvaluator evaluator(global, pieces, model, config.rules,
                                       eval_options);
  result.impact = evaluator.evaluate_rects(result.features);

  PIL_INFO("anneal: " << result.initial_cost_ps << " -> "
                      << result.final_cost_ps << " ps model cost, "
                      << result.moves_accepted << "/" << result.moves_tried
                      << " moves accepted");
  return result;
}

}  // namespace pil::pilfill
