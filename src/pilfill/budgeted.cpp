#include "pil/pilfill/budgeted.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "pil/util/log.hpp"

namespace pil::pilfill {

namespace {

double res_factor(const InstanceColumn& c, Objective obj) {
  return obj == Objective::kWeighted ? c.res_weighted : c.res_nonweighted;
}

}  // namespace

BudgetedResult solve_budgeted(const std::vector<TileInstance>& instances,
                              const SolverContext& ctx,
                              const BudgetedConfig& config, int num_nets) {
  PIL_REQUIRE(ctx.style == cap::FillStyle::kFloating,
              "budgeted allocation requires the convex floating model");
  PIL_REQUIRE(ctx.lut != nullptr && ctx.model != nullptr,
              "budgeted allocation needs the capacitance models");
  PIL_REQUIRE(num_nets >= 0, "negative net count");

  BudgetedResult result;
  result.counts.resize(instances.size());
  result.net_cap_used_ff.assign(num_nets, 0.0);

  auto budget_of = [&](layout::NetId n) {
    if (n < 0) return std::numeric_limits<double>::infinity();
    if (static_cast<std::size_t>(n) < config.net_cap_budget_ff.size())
      return config.net_cap_budget_ff[n];
    return config.default_budget_ff;
  };
  auto remaining_budget = [&](layout::NetId n) {
    if (n < 0) return std::numeric_limits<double>::infinity();
    return budget_of(n) - result.net_cap_used_ff[n];
  };

  std::vector<int> todo(instances.size());
  long long total_required = 0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    result.counts[i].assign(instances[i].cols.size(), 0);
    todo[i] = instances[i].required;
    total_required += instances[i].required;
  }

  // Global heap of next-feature marginals: (cost, instance, column).
  struct Entry {
    double cost;
    int inst;
    int col;
  };
  auto cmp = [](const Entry& a, const Entry& b) { return a.cost > b.cost; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);

  // Marginal delay cost and capacitance increment of the n-th feature
  // (1-based) in a column.
  auto marginal = [&](const TileInstance& inst, int k, int n,
                      double& dcap) -> double {
    const InstanceColumn& c = inst.cols[k];
    if (!c.two_sided) {
      dcap = 0.0;
      return 0.0;
    }
    const auto& lut = ctx.lut->table(c.d, c.num_sites);
    dcap = (lut[n] - lut[n - 1]) * ctx.switch_factor;
    return dcap * res_factor(c, ctx.objective);
  };

  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (todo[i] <= 0) continue;
    for (std::size_t k = 0; k < instances[i].cols.size(); ++k) {
      if (instances[i].cols[k].num_sites == 0) continue;
      double dcap;
      const double cost = marginal(instances[i], static_cast<int>(k), 1, dcap);
      heap.push(Entry{cost, static_cast<int>(i), static_cast<int>(k)});
    }
  }

  while (!heap.empty()) {
    const Entry e = heap.top();
    heap.pop();
    if (todo[e.inst] <= 0) continue;  // tile already satisfied
    const TileInstance& inst = instances[e.inst];
    const InstanceColumn& c = inst.cols[e.col];
    int& count = result.counts[e.inst][e.col];
    PIL_ASSERT(count < c.num_sites, "column overflow in budgeted heap");

    double dcap;
    marginal(inst, e.col, count + 1, dcap);
    // Budgets are hard: the increment must fit both facing nets (a column
    // between two pieces of the SAME net charges it twice). Marginals only
    // grow with the count, and budgets only shrink, so a blocked column can
    // be dropped outright.
    const bool same_net = c.below_net == c.above_net;
    const double below_need = same_net ? 2 * dcap : dcap;
    if (below_need > remaining_budget(c.below_net) + 1e-15) continue;
    if (!same_net && dcap > remaining_budget(c.above_net) + 1e-15) continue;

    ++count;
    --todo[e.inst];
    ++result.placed;
    if (c.two_sided) {
      // The coupling increment loads both facing nets.
      result.net_cap_used_ff[c.below_net] += dcap;
      result.net_cap_used_ff[c.above_net] += dcap;
    }
    if (count < c.num_sites && todo[e.inst] > 0) {
      double next_dcap;
      const double cost = marginal(inst, e.col, count + 1, next_dcap);
      heap.push(Entry{cost, e.inst, e.col});
    }
  }

  result.shortfall = total_required - result.placed;
  for (int n = 0; n < num_nets; ++n) {
    const double b = budget_of(n);
    if (std::isfinite(b) && b > 0)
      result.max_budget_utilization = std::max(
          result.max_budget_utilization, result.net_cap_used_ff[n] / b);
  }
  PIL_INFO("budgeted fill: placed " << result.placed << " (shortfall "
                                    << result.shortfall
                                    << "), max budget utilization "
                                    << result.max_budget_utilization);
  return result;
}

namespace {

/// Worst-case source resistance per net: any added fF costs at most
/// R_max * 1e-3 ps on that net, so dC <= budget_ps * 1e3 / R_max.
std::vector<double> worst_case_res(const std::vector<rctree::WirePiece>& pieces,
                                   int num_nets) {
  std::vector<double> rmax(num_nets, 0.0);
  for (const auto& p : pieces) {
    PIL_REQUIRE(p.net >= 0 && p.net < num_nets, "piece with bad net id");
    rmax[p.net] =
        std::max(rmax[p.net], p.upstream_res + p.res_per_um * p.length());
  }
  return rmax;
}

}  // namespace

std::vector<double> budgets_from_delay_ps(
    const std::vector<rctree::WirePiece>& pieces, int num_nets,
    double delay_budget_ps) {
  PIL_REQUIRE(delay_budget_ps >= 0, "negative delay budget");
  const std::vector<double> rmax = worst_case_res(pieces, num_nets);
  std::vector<double> budgets(num_nets,
                              std::numeric_limits<double>::infinity());
  for (int n = 0; n < num_nets; ++n)
    if (rmax[n] > 0) budgets[n] = delay_budget_ps * 1e3 / rmax[n];
  return budgets;
}

std::vector<double> budgets_from_per_net_delay_ps(
    const std::vector<rctree::WirePiece>& pieces, int num_nets,
    const std::vector<double>& delay_allowance_ps) {
  PIL_REQUIRE(static_cast<int>(delay_allowance_ps.size()) == num_nets,
              "allowance vector size mismatch");
  const std::vector<double> rmax = worst_case_res(pieces, num_nets);
  std::vector<double> budgets(num_nets,
                              std::numeric_limits<double>::infinity());
  for (int n = 0; n < num_nets; ++n) {
    PIL_REQUIRE(delay_allowance_ps[n] >= 0, "negative delay allowance");
    if (rmax[n] > 0) budgets[n] = delay_allowance_ps[n] * 1e3 / rmax[n];
  }
  return budgets;
}

}  // namespace pil::pilfill
