#include "pil/pilfill/session.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "flow_common.hpp"
#include "pil/obs/journal.hpp"
#include "pil/obs/metrics.hpp"
#include "pil/obs/trace.hpp"
#include "pil/simd/simd.hpp"
#include "pil/util/log.hpp"
#include "pil/util/stopwatch.hpp"

namespace pil::pilfill {

namespace {

using fill::SlackColumns;
using fill::SlackMode;

/// Bitwise double comparison: distinguishes -0.0 from +0.0 (and any NaN
/// payloads), which is what "reusing this cached solve is provably safe"
/// requires -- equal bits in, equal bits out.
bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

/// Two instances are interchangeable as *solver inputs* when everything a
/// solver reads matches bitwise. InstanceColumn::column -- the snapshot-flat
/// column index -- is deliberately excluded: untouched columns keep their
/// values across an edit but may shift position in the snapshot, and no
/// solver reads the index (placement rectangles are generated from the
/// current snapshot at assembly time, cached counts in hand).
bool solver_equivalent(const TileInstance& a, const TileInstance& b) {
  if (a.tile_flat != b.tile_flat || a.required != b.required ||
      a.cols.size() != b.cols.size())
    return false;
  for (std::size_t k = 0; k < a.cols.size(); ++k) {
    const InstanceColumn& ca = a.cols[k];
    const InstanceColumn& cb = b.cols[k];
    if (ca.first_site != cb.first_site || ca.num_sites != cb.num_sites ||
        ca.two_sided != cb.two_sided || ca.below_net != cb.below_net ||
        ca.above_net != cb.above_net || !bits_equal(ca.x, cb.x) ||
        !bits_equal(ca.d, cb.d) ||
        !bits_equal(ca.res_nonweighted, cb.res_nonweighted) ||
        !bits_equal(ca.res_weighted, cb.res_weighted) ||
        !bits_equal(ca.res_exact, cb.res_exact))
      return false;
  }
  return true;
}

bool stats_equal(const grid::DensityStats& a, const grid::DensityStats& b) {
  return a.min_density == b.min_density && a.max_density == b.max_density &&
         a.mean_density == b.mean_density;
}

bool rects_equal(const std::vector<geom::Rect>& a,
                 const std::vector<geom::Rect>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].xlo != b[i].xlo || a[i].ylo != b[i].ylo ||
        a[i].xhi != b[i].xhi || a[i].yhi != b[i].yhi)
      return false;
  return true;
}

bool impacts_equal(const DelayImpact& a, const DelayImpact& b) {
  return a.delay_ps == b.delay_ps &&
         a.weighted_delay_ps == b.weighted_delay_ps &&
         a.exact_sink_delay_ps == b.exact_sink_delay_ps &&
         a.features == b.features && a.unmapped == b.unmapped;
}

bool targets_equal(const density::FillTargetResult& a,
                   const density::FillTargetResult& b) {
  return a.features_per_tile == b.features_per_tile &&
         a.total_features == b.total_features &&
         stats_equal(a.before, b.before) && stats_equal(a.after, b.after) &&
         a.lower_target_used == b.lower_target_used &&
         a.upper_bound_used == b.upper_bound_used;
}

bool failures_equal(const std::vector<TileFailure>& a,
                    const std::vector<TileFailure>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].tile != b[i].tile || a[i].method != b[i].method ||
        a[i].served_by != b[i].served_by || a[i].reason != b[i].reason ||
        a[i].ilp_status != b[i].ilp_status ||
        a[i].lp_status != b[i].lp_status ||
        a[i].used_incumbent != b[i].used_incumbent)
      return false;
  return true;
}

bool methods_equal(const MethodResult& a, const MethodResult& b) {
  // The search-effort counters (simplex/dual iterations, warm starts,
  // bb_nodes, lp_solves) are deliberately NOT compared: like the timing
  // fields they describe the execution strategy -- a warm-started re-solve
  // reaches the same answer in fewer pivots, and may walk a differently
  // shaped (equally valid) search tree -- not the solution.
  return a.method == b.method && impacts_equal(a.impact, b.impact) &&
         a.placed == b.placed && a.shortfall == b.shortfall &&
         a.tiles_node_limit == b.tiles_node_limit &&
         a.tiles_degraded == b.tiles_degraded &&
         a.tiles_failed == b.tiles_failed &&
         failures_equal(a.failures, b.failures) &&
         a.max_ilp_gap == b.max_ilp_gap &&
         stats_equal(a.density_after, b.density_after) &&
         a.placement.features_per_tile == b.placement.features_per_tile &&
         rects_equal(a.placement.features, b.placement.features);
}

}  // namespace

bool flow_results_equivalent(const FlowResult& a, const FlowResult& b) {
  if (!stats_equal(a.density_before, b.density_before) ||
      !targets_equal(a.target, b.target) ||
      a.total_capacity != b.total_capacity ||
      a.methods.size() != b.methods.size())
    return false;
  for (std::size_t i = 0; i < a.methods.size(); ++i)
    if (!methods_equal(a.methods[i], b.methods[i])) return false;
  return true;
}

// ---------------------------------------------------------------------------

struct FillSession::Impl {
  layout::Layout layout;  ///< owned, mutated by apply_edit
  FlowConfig config;

  StageSeconds stages;
  double prep_seconds = 0.0;

  std::optional<grid::Dissection> dissection;
  std::optional<grid::DensityMap> wires;
  std::vector<rctree::RcTree> trees;  ///< one per net, net-id order
  std::vector<int> piece_offsets;     ///< net n's pieces: [off[n], off[n+1])
  std::vector<rctree::WirePiece> pieces;
  std::optional<fill::GlobalSlackScan> scan;
  std::optional<SlackColumns> global;  ///< current mode-III snapshot
  std::optional<SlackColumns> alt;     ///< solver columns when mode != kIII
  density::FillTargetResult target;
  std::map<int, TileInstance> instances;  ///< tile_flat -> instance (req > 0)
  PrepColumns prep_scratch;  ///< SoA workspace for incremental rebuilds
  std::optional<cap::CouplingModel> model;
  std::optional<cap::ColumnCapLut> lut;  ///< shared single-thread LUT cache
  std::unique_ptr<DelayImpactEvaluator> evaluator;
  /// Per-method, per-tile solve results; entries dropped when an edit
  /// changes the tile's solver inputs.
  std::map<Method, std::map<int, TileSolveResult>> cache;
  /// Per-method, per-tile root-relaxation bases from previous solves.
  /// Deliberately NOT invalidated with `cache`: a dirty tile's re-solve is
  /// a lightly perturbed instance of the same LP, which is exactly what a
  /// warm start wants. A basis that no longer fits (instance changed
  /// shape) is rejected inside the LP layer and the solve runs cold, so a
  /// stale hint can slow a solve down but never change its result.
  std::map<Method, std::map<int, std::shared_ptr<const lp::Basis>>>
      basis_hints;
  SessionStats stats;
  bool edited = false;  ///< gates pilfill.session.* publication in solve()
  std::uint32_t journal_session_id = 0;  ///< correlation id for flight dumps

  const SlackColumns& solver_slack() const { return alt ? *alt : *global; }

  void reflatten() {
    pieces = fill::flatten_pieces(trees);
    piece_offsets.assign(trees.size() + 1, 0);
    for (std::size_t n = 0; n < trees.size(); ++n)
      piece_offsets[n + 1] =
          piece_offsets[n] + static_cast<int>(trees[n].pieces().size());
  }

  void rebuild_evaluator() {
    evaluator = std::make_unique<DelayImpactEvaluator>(
        *global, pieces, *model, config.rules,
        flow_detail::make_eval_options(config));
  }

  /// Per-tile fill requirements from the current density map and capacity
  /// inventory -- the same computation for prep and re-targeting after an
  /// edit (the MC targeter is global and sequential, so it re-runs whole).
  density::FillTargetResult compute_target() const {
    std::vector<int> capacity(dissection->num_tiles());
    for (int t = 0; t < dissection->num_tiles(); ++t)
      capacity[t] = global->tile_capacity(t);
    if (config.required_per_tile.empty()) {
      switch (config.target_engine) {
        case TargetEngine::kMonteCarlo:
          return density::compute_fill_amounts_mc(*wires, capacity,
                                                  config.rules, config.target);
        case TargetEngine::kMinVarLp:
          return density::compute_fill_amounts_lp(*wires, capacity,
                                                  config.rules, config.target);
        case TargetEngine::kMinFillLp:
          return density::compute_fill_amounts_min_fill_lp(
              *wires, capacity, config.rules, config.target);
      }
    }
    density::FillTargetResult out;
    PIL_REQUIRE(static_cast<int>(config.required_per_tile.size()) ==
                    dissection->num_tiles(),
                "required_per_tile size must match the dissection");
    out.features_per_tile = config.required_per_tile;
    out.before = wires->stats();
    grid::DensityMap after = *wires;
    for (int t = 0; t < dissection->num_tiles(); ++t) {
      PIL_REQUIRE(config.required_per_tile[t] >= 0,
                  "negative fill requirement");
      out.total_features += config.required_per_tile[t];
      after.add_area(dissection->tile_unflat(t),
                     config.required_per_tile[t] *
                         config.rules.feature_area());
    }
    out.after = after.stats();
    return out;
  }

  Impl(const layout::Layout& src, const FlowConfig& cfg)
      : layout(src), config(cfg) {
    config.validate(layout);
    // Flight-recorder attribution: give this session a correlation id and
    // make sure dumps can decode pilfill enum payloads.
    register_journal_namer();
    journal_session_id = obs::journal_new_id();
    // Config-armed fault injection is process-global (like PIL_FAULT); a
    // non-empty spec replaces the active plan, an empty one leaves any
    // env-armed plan alone.
    if (!config.fault_spec.empty())
      util::set_fault_plan(util::FaultPlan::parse(config.fault_spec,
                                                  config.seed));
    {
      obs::TraceSpan span("prep.dissection");
      ScopedTimer timer(stages.dissection);
      dissection.emplace(layout.die(), config.window_um, config.r);
    }
    wires.emplace(*dissection);
    {
      obs::TraceSpan span("prep.rc_trees");
      ScopedTimer timer(stages.rc_extraction);
      trees = rctree::build_all_trees(layout);
    }
    {
      ScopedTimer timer(stages.rc_extraction);
      reflatten();
    }
    {
      obs::TraceSpan span("prep.slack_columns");
      ScopedTimer timer(stages.slack_extraction);
      scan.emplace(layout, *dissection, config.layer, config.rules);
      scan->build(pieces);
      global = scan->snapshot();
    }
    {
      obs::TraceSpan span("prep.density_map");
      ScopedTimer timer(stages.density_map);
      wires->add_layer_wires(layout, config.layer);
      wires->add_layer_metal_blockages(layout, config.layer);
    }
    if (config.solver_mode != SlackMode::kIII) {
      obs::TraceSpan span("prep.slack_columns");
      ScopedTimer timer(stages.slack_extraction);
      alt = fill::extract_slack_columns(layout, *dissection, pieces,
                                        config.layer, config.rules,
                                        config.solver_mode);
    }
    {
      obs::TraceSpan span("prep.targeting");
      ScopedTimer timer(stages.targeting);
      target = compute_target();
    }
    {
      obs::TraceSpan span("prep.instances");
      ScopedTimer timer(stages.instances);
      PrepColumns scratch;
      for (int t = 0; t < dissection->num_tiles(); ++t) {
        const int required = target.features_per_tile[t];
        if (required == 0) continue;
        instances.emplace(
            t, build_tile_instance(t, required, solver_slack(), pieces,
                                   config.net_criticality, &scratch));
      }
    }
    prep_seconds = stages.total();
    obs::journal_record_at(
        {journal_session_id, 0, -1}, obs::JournalEventKind::kSessionBegin, 0,
        0, static_cast<std::uint64_t>(dissection->num_tiles()), prep_seconds);

    const layout::Layer& layer = layout.layer(config.layer);
    model.emplace(layer.eps_r, layer.thickness_um);
    lut.emplace(*model, config.rules.feature_um);
    rebuild_evaluator();

    if (obs::metrics_enabled()) {
      auto& reg = obs::metrics();
      reg.gauge("pilfill.prep.dissection_seconds").add(stages.dissection);
      reg.gauge("pilfill.prep.density_map_seconds").add(stages.density_map);
      reg.gauge("pilfill.prep.rc_extraction_seconds")
          .add(stages.rc_extraction);
      reg.gauge("pilfill.prep.slack_extraction_seconds")
          .add(stages.slack_extraction);
      reg.gauge("pilfill.prep.targeting_seconds").add(stages.targeting);
      reg.gauge("pilfill.prep.instances_seconds").add(stages.instances);
      reg.counter("pilfill.prep.tiles").add(dissection->num_tiles());
      reg.counter("pilfill.prep.instances")
          .add(static_cast<long long>(instances.size()));
      reg.counter(obs::labeled("pil.simd.backend",
                               {{"backend", simd::backend_name()}}))
          .add(1);
    }
  }

  FlowResult solve(const std::vector<Method>& methods,
                   const SolvePolicy* policy_override,
                   std::uint32_t journal_flow_id,
                   const util::Deadline* cancel) {
    // A per-call policy swaps only the SolvePolicy slice; the model half --
    // everything the cached prep and solves were built from -- is shared
    // with the session config by construction.
    FlowConfig effective;
    if (policy_override != nullptr) {
      policy_override->validate();
      effective = config;
      effective.policy() = *policy_override;
      if (!policy_override->fault_spec.empty())
        util::set_fault_plan(util::FaultPlan::parse(
            policy_override->fault_spec, config.seed));
      // Ladder-served cache entries are artifacts of the policy that
      // produced them (a tighter deadline degrades tiles a looser one
      // would solve); under a per-call policy they are re-attempted.
      for (auto& [m, mcache] : cache)
        for (auto it = mcache.begin(); it != mcache.end();)
          it = it->second.failure.has_value() ? mcache.erase(it)
                                              : std::next(it);
    }
    const FlowConfig& cfg = policy_override != nullptr ? effective : config;

    flow_detail::require_methods_supported(cfg, methods);
    FlowResult result;
    result.density_before = wires->stats();
    result.total_capacity = global->total_capacity();
    result.target = target;
    result.prep_seconds = prep_seconds;
    result.prep_stages = stages;

    // The flow budget covers this solve() call: the clock starts here, and
    // tiles solved after it expires are served by the degradation ladder.
    // An external cancel token rides the same flow deadline: sooner()
    // keeps the token's shared cancellation flag (token first), so a
    // watchdog firing cancel() degrades mid-solve like an expired budget.
    std::optional<util::Deadline> flow_deadline;
    if (cfg.flow_deadline_seconds > 0) {
      flow_deadline =
          cancel != nullptr
              ? util::Deadline::sooner(
                    *cancel, util::Deadline::after(cfg.flow_deadline_seconds))
              : util::Deadline::after(cfg.flow_deadline_seconds);
    } else if (cancel != nullptr) {
      flow_deadline = *cancel;
    }
    const SolverContext ctx = flow_detail::make_context(
        cfg, *model, *lut, flow_deadline ? &*flow_deadline : nullptr);

    // One flow correlation id per solve() call (callers like pil::service
    // may supply their own to tie solver events to a request); the worker
    // pool copies the scope into its threads so every tile event links
    // back here.
    obs::JournalScope journal_scope(
        {journal_session_id,
         journal_flow_id != 0 ? journal_flow_id : obs::journal_new_id(), -1});
    Stopwatch flow_watch;
    obs::journal_record(obs::JournalEventKind::kFlowBegin, 0, 0,
                        static_cast<std::uint64_t>(instances.size()));

    for (const Method method : methods) {
      obs::TraceSpan method_span(
          "method", std::string("{\"method\":\"") + to_string(method) + "\"}");
      MethodResult mr;
      mr.method = method;
      mr.placement.features_per_tile.assign(dissection->num_tiles(), 0);

      std::map<int, TileSolveResult>& mcache = cache[method];
      Stopwatch solve_watch;
      std::vector<const TileInstance*> todo;
      std::vector<int> todo_tiles;
      todo.reserve(instances.size());
      for (const auto& [tile, inst] : instances) {
        if (mcache.count(tile)) continue;
        todo.push_back(&inst);
        todo_tiles.push_back(tile);
      }
      obs::journal_record(obs::JournalEventKind::kMethodBegin,
                          static_cast<std::uint16_t>(method), 0,
                          static_cast<std::uint64_t>(todo.size()));
      // Warm-start hints for the tiles about to be (re-)solved: the root
      // basis each tile's previous solve left behind, if any.
      std::map<int, std::shared_ptr<const lp::Basis>>& mhints =
          basis_hints[method];
      std::vector<std::shared_ptr<const lp::Basis>> warm_roots;
      long long basis_hits = 0;
      if (cfg.ilp.warm_start && !todo.empty()) {
        warm_roots.reserve(todo.size());
        const bool journaling = obs::journal_armed();
        obs::JournalCorrelation tile_corr = obs::journal_correlation();
        for (const int tile : todo_tiles) {
          const auto hit = mhints.find(tile);
          warm_roots.push_back(hit != mhints.end() ? hit->second : nullptr);
          if (warm_roots.back() != nullptr) ++basis_hits;
          if (journaling) {
            tile_corr.tile = tile;
            obs::journal_record_at(tile_corr,
                                   warm_roots.back() != nullptr
                                       ? obs::JournalEventKind::kBasisHit
                                       : obs::JournalEventKind::kBasisMiss,
                                   static_cast<std::uint16_t>(method));
          }
        }
      }
      std::vector<TileSolveResult> solved =
          flow_detail::solve_instances_parallel(
              method, todo, ctx, *model, cfg,
              warm_roots.empty() ? nullptr : &warm_roots);
      for (std::size_t i = 0; i < todo.size(); ++i) {
        // Harvest the new root basis for the next re-solve of this tile
        // (keeping any previous hint when this solve produced none).
        if (solved[i].root_basis != nullptr)
          mhints[todo_tiles[i]] = solved[i].root_basis;
        mcache[todo_tiles[i]] = std::move(solved[i]);
      }
      const long long basis_misses =
          static_cast<long long>(todo.size()) - basis_hits;
      stats.basis_hits += basis_hits;
      stats.basis_misses += basis_misses;
      mr.solve_seconds = solve_watch.seconds();
      obs::journal_record(obs::JournalEventKind::kMethodEnd,
                          static_cast<std::uint16_t>(method), 0,
                          static_cast<std::uint64_t>(todo.size()),
                          mr.solve_seconds);

      const long long reused =
          static_cast<long long>(instances.size() - todo.size());
      stats.tiles_resolved += static_cast<long long>(todo.size());
      stats.tiles_reused += reused;

      for (const auto& [tile, inst] : instances) {
        const TileSolveResult& tsr = mcache.at(tile);
        flow_detail::accumulate_tile_stats(tsr, mr);
        mr.placement.features_per_tile[tile] = tsr.placed;
        flow_detail::append_rects(inst, tsr.counts, solver_slack(),
                                  cfg.rules, mr.placement.features);
      }

      {
        obs::TraceSpan eval_span(
            "evaluate",
            std::string("{\"method\":\"") + to_string(method) + "\"}");
        ScopedTimer eval_timer(mr.eval_seconds);
        mr.impact = evaluator->evaluate_rects(mr.placement.features);
      }

      grid::DensityMap after = *wires;
      for (const auto& rect : mr.placement.features) after.add_rect(rect);
      mr.density_after = after.stats();

      flow_detail::publish_method_metrics(mr, todo.size());
      // Session counters are only published once the session is used as a
      // session (an edit happened or a solve hit the cache), so a pristine
      // one-shot run emits exactly the metric set it always has.
      if ((edited || reused > 0) && obs::metrics_enabled()) {
        auto& reg = obs::metrics();
        const char* m = to_string(method);
        reg.counter(obs::labeled("pilfill.session.tiles_resolved",
                                 {{"method", m}}))
            .add(static_cast<long long>(todo.size()));
        reg.counter(
               obs::labeled("pilfill.session.tiles_reused", {{"method", m}}))
            .add(reused);
        reg.counter(
               obs::labeled("pilfill.session.basis_hits", {{"method", m}}))
            .add(basis_hits);
        reg.counter(
               obs::labeled("pilfill.session.basis_misses", {{"method", m}}))
            .add(basis_misses);
      }
      if (mr.tiles_node_limit > 0 || mr.tiles_degraded > 0 ||
          mr.tiles_failed > 0)
        PIL_WARN(to_string(method)
                 << ": " << mr.tiles_node_limit << " tile(s) hit the B&B node "
                 << "budget (worst gap " << mr.max_ilp_gap << "), "
                 << mr.tiles_degraded << " tile(s) served degraded, "
                 << mr.tiles_failed << " tile(s) failed outright");
      PIL_INFO(to_string(method)
               << ": placed " << mr.placed << " (shortfall " << mr.shortfall
               << "), delay +" << mr.impact.delay_ps << " ps, weighted +"
               << mr.impact.weighted_delay_ps << " ps, "
               << mr.solve_seconds << " s");
      result.methods.push_back(std::move(mr));
    }
    obs::journal_record(obs::JournalEventKind::kFlowEnd, 0, 0, 0,
                        flow_watch.seconds());
    return result;
  }

  EditStats apply_edit(const WireEdit& edit) {
    obs::TraceSpan span("session.apply_edit");
    Stopwatch watch;

    // -- 1. Resolve the edited net and validate the request. --------------
    layout::NetId net = layout::kInvalidNet;
    switch (edit.kind) {
      case WireEdit::Kind::kAddSegment:
        PIL_REQUIRE(edit.net != layout::kInvalidNet &&
                        static_cast<std::size_t>(edit.net) < layout.num_nets(),
                    "edit references an unknown net");
        PIL_REQUIRE(edit.width_um > 0,
                    "added segment needs a positive width");
        net = edit.net;
        break;
      case WireEdit::Kind::kRemoveSegment:
      case WireEdit::Kind::kMoveSegment: {
        PIL_REQUIRE(edit.segment >= 0 &&
                        static_cast<std::size_t>(edit.segment) <
                            layout.num_segments(),
                    "edit references an unknown segment");
        const layout::WireSegment& seg = layout.segment(edit.segment);
        PIL_REQUIRE(!seg.removed(), "segment was already removed");
        PIL_REQUIRE(seg.layer == config.layer,
                    "edits must stay on the session's fill layer");
        net = seg.net;
        break;
      }
    }

    // Footprints of the edited net's pieces *before* the edit. Every column
    // any of them bounds must be rescanned: the edit changes upstream
    // resistances and sink weights across the whole net, not just near the
    // edited segment.
    std::vector<geom::Rect> changed;
    for (int p = piece_offsets[net]; p < piece_offsets[net + 1]; ++p)
      changed.push_back(pieces[p].rect());

    // -- 2. Mutate the layout, remembering how to roll back. ---------------
    layout::SegmentId sid = layout::kInvalidSegment;
    std::vector<geom::Rect> drawn;  // density-relevant drawn rects (old+new)
    std::function<void()> rollback;
    switch (edit.kind) {
      case WireEdit::Kind::kAddSegment: {
        sid = layout.add_segment(net, config.layer, edit.a, edit.b,
                                 edit.width_um);
        drawn.push_back(layout.segment(sid).rect());
        // A rolled-back add leaves an inert tombstone (ids stay stable).
        rollback = [this, sid] { layout.remove_segment(sid); };
        break;
      }
      case WireEdit::Kind::kRemoveSegment: {
        sid = edit.segment;
        const layout::WireSegment saved = layout.segment(sid);
        drawn.push_back(saved.rect());
        const std::vector<layout::SegmentId>& segs = layout.net(net).segments;
        const std::size_t pos =
            std::find(segs.begin(), segs.end(), sid) - segs.begin();
        layout.remove_segment(sid);
        rollback = [this, sid, saved, pos] {
          layout.mutable_segment(sid) = saved;
          std::vector<layout::SegmentId>& list =
              layout.mutable_net(saved.net).segments;
          list.insert(list.begin() + static_cast<std::ptrdiff_t>(pos), sid);
        };
        break;
      }
      case WireEdit::Kind::kMoveSegment: {
        sid = edit.segment;
        const layout::WireSegment saved = layout.segment(sid);
        drawn.push_back(saved.rect());
        layout.move_segment(sid, edit.dx, edit.dy);  // atomic: throws first
        drawn.push_back(layout.segment(sid).rect());
        rollback = [this, sid, saved] {
          layout::WireSegment& seg = layout.mutable_segment(sid);
          // Restore the exact doubles: (a + dx) - dx may differ from a.
          seg.a = saved.a;
          seg.b = saved.b;
        };
        break;
      }
    }

    // -- 3. Rebuild the edited net's RC tree (the connectivity gate). ------
    try {
      // The session_edit fault site sits inside the rollback scope so an
      // injected throw exercises the strong guarantee: the layout mutation
      // above must be undone before the exception escapes.
      if (util::faults_armed())
        util::maybe_fault(util::FaultSite::kSessionEdit,
                          static_cast<std::uint64_t>(stats.edits));
      rctree::RcTree fresh = rctree::RcTree::build(layout, net);
      trees[net] = std::move(fresh);
    } catch (const util::InjectedFault& e) {
      obs::journal_record_at({journal_session_id, 0, -1},
                             obs::JournalEventKind::kFaultInjected, 0,
                             static_cast<std::uint32_t>(e.site()), e.key());
      rollback();
      throw;
    } catch (...) {
      rollback();
      throw;
    }
    edited = true;

    // -- 4. Renumber the flattened piece array; pieces of nets after the
    //       edited one shift by a constant. ------------------------------
    const int old_net_end = piece_offsets[net + 1];
    reflatten();
    const int delta = piece_offsets[net + 1] - old_net_end;
    if (delta != 0) scan->shift_piece_indices(old_net_end, delta);

    // Post-edit footprints of the net, plus the drawn rects for safety.
    for (int p = piece_offsets[net]; p < piece_offsets[net + 1]; ++p)
      changed.push_back(pieces[p].rect());
    changed.insert(changed.end(), drawn.begin(), drawn.end());

    // -- 5. Density: re-accumulate the tiles under the drawn change, in
    //       original layout order (bit-identical to a fresh map). ---------
    std::vector<int> density_tiles;
    for (const geom::Rect& r : drawn) {
      grid::TileIndex lo, hi;
      if (!dissection->tiles_overlapping(r, lo, hi)) continue;
      for (int iy = lo.iy; iy <= hi.iy; ++iy)
        for (int ix = lo.ix; ix <= hi.ix; ++ix)
          density_tiles.push_back(dissection->tile_flat({ix, iy}));
    }
    std::sort(density_tiles.begin(), density_tiles.end());
    density_tiles.erase(
        std::unique(density_tiles.begin(), density_tiles.end()),
        density_tiles.end());
    if (!density_tiles.empty())
      wires->recompute_tiles(layout, config.layer, density_tiles);

    // -- 6. Re-scan the slack columns the edit can see. -------------------
    const fill::GlobalSlackScan::RescanResult rr =
        scan->rescan(pieces, changed);
    std::set<int> candidates(rr.touched_tiles.begin(),
                             rr.touched_tiles.end());

    if (!alt) {
      // Untouched tiles keep their instances; only the stored snapshot-flat
      // column indices shift with the rescanned groups.
      for (auto& [tile, inst] : instances) {
        if (candidates.count(tile)) continue;  // rebuilt below
        for (InstanceColumn& ic : inst.cols) {
          PIL_ASSERT(rr.column_remap[ic.column] >= 0,
                     "untouched tile references a rescanned column");
          ic.column = rr.column_remap[ic.column];
        }
      }
    }
    global = scan->snapshot();
    if (alt)
      // Modes I/II have no incremental scanner; re-extract and rebuild all
      // instances (cached solves still survive via solver-equivalence).
      alt = fill::extract_slack_columns(layout, *dissection, pieces,
                                        config.layer, config.rules,
                                        config.solver_mode);

    // -- 7. Re-target: requirement changes dirty tiles whose geometry the
    //       edit never touched (window-overlap propagation). --------------
    const std::vector<int> old_required = target.features_per_tile;
    target = compute_target();
    int retargeted = 0;
    for (int t = 0; t < dissection->num_tiles(); ++t) {
      if (target.features_per_tile[t] == old_required[t]) continue;
      candidates.insert(t);
      ++retargeted;
    }
    if (alt) {
      for (const auto& [tile, inst] : instances) candidates.insert(tile);
      for (int t = 0; t < dissection->num_tiles(); ++t)
        if (target.features_per_tile[t] > 0) candidates.insert(t);
    }

    // -- 8. Rebuild candidate instances; drop cached solves only when the
    //       solver inputs actually changed. ------------------------------
    int dirty = 0;
    for (const int t : candidates) {
      const int required = target.features_per_tile[t];
      auto it = instances.find(t);
      if (required == 0) {
        if (it != instances.end()) {
          instances.erase(it);
          for (auto& [m, mcache] : cache) mcache.erase(t);
          ++dirty;
        }
        continue;
      }
      TileInstance fresh = build_tile_instance(
          t, required, solver_slack(), pieces, config.net_criticality,
          &prep_scratch);
      const bool reusable =
          it != instances.end() && solver_equivalent(it->second, fresh);
      if (it == instances.end())
        instances.emplace(t, std::move(fresh));
      else
        it->second = std::move(fresh);
      if (!reusable) {
        for (auto& [m, mcache] : cache) mcache.erase(t);
        ++dirty;
      }
    }

    // -- 9. The evaluator binds the snapshot and pieces; rebuild it. ------
    rebuild_evaluator();

    ++stats.edits;
    stats.columns_rescanned += rr.xcols_rescanned;
    stats.tiles_dirty += dirty;

    EditStats es;
    es.segment = sid;
    es.columns_rescanned = rr.xcols_rescanned;
    es.tiles_retargeted = retargeted;
    es.tiles_dirty = dirty;
    es.seconds = watch.seconds();
    obs::journal_record_at({journal_session_id, 0, -1},
                           obs::JournalEventKind::kSessionEdit, 0, 0,
                           static_cast<std::uint64_t>(sid), es.seconds);

    if (obs::metrics_enabled()) {
      auto& reg = obs::metrics();
      reg.counter("pilfill.session.edits").add(1);
      reg.counter("pilfill.session.columns_rescanned")
          .add(rr.xcols_rescanned);
      reg.counter("pilfill.session.tiles_dirty").add(dirty);
      reg.gauge("pilfill.session.edit_seconds").add(es.seconds);
    }
    PIL_INFO("apply_edit: segment " << sid << ", " << rr.xcols_rescanned
             << " column(s) rescanned, " << retargeted
             << " tile(s) retargeted, " << dirty << " tile(s) dirty ("
             << es.seconds << " s)");
    return es;
  }
};

// ---------------------------------------------------------------------------

FillSession::FillSession(const layout::Layout& layout,
                         const FlowConfig& config)
    : impl_(std::make_unique<Impl>(layout, config)) {}
FillSession::~FillSession() = default;
FillSession::FillSession(FillSession&&) noexcept = default;
FillSession& FillSession::operator=(FillSession&&) noexcept = default;

FlowResult FillSession::solve(const std::vector<Method>& methods) {
  return impl_->solve(methods, nullptr, 0, nullptr);
}

FlowResult FillSession::solve(const std::vector<Method>& methods,
                              const SolvePolicy& policy,
                              std::uint32_t journal_flow_id,
                              const util::Deadline* cancel) {
  return impl_->solve(methods, &policy, journal_flow_id, cancel);
}

EditStats FillSession::apply_edit(const WireEdit& edit) {
  return impl_->apply_edit(edit);
}

const layout::Layout& FillSession::layout() const { return impl_->layout; }
const FlowConfig& FillSession::config() const { return impl_->config; }
const grid::Dissection& FillSession::dissection() const {
  return *impl_->dissection;
}
int FillSession::tiles_total() const { return impl_->dissection->num_tiles(); }
const SessionStats& FillSession::stats() const { return impl_->stats; }
const grid::DensityMap& FillSession::wires() const { return *impl_->wires; }
const density::FillTargetResult& FillSession::target() const {
  return impl_->target;
}
const fill::SlackColumns& FillSession::global_slack() const {
  return *impl_->global;
}
const fill::SlackColumns& FillSession::solver_slack() const {
  return impl_->solver_slack();
}
const std::vector<rctree::WirePiece>& FillSession::pieces() const {
  return impl_->pieces;
}
std::vector<TileInstance> FillSession::instances_snapshot() const {
  std::vector<TileInstance> out;
  out.reserve(impl_->instances.size());
  for (const auto& [tile, inst] : impl_->instances) out.push_back(inst);
  return out;
}
double FillSession::prep_seconds() const { return impl_->prep_seconds; }
const StageSeconds& FillSession::prep_stages() const { return impl_->stages; }

}  // namespace pil::pilfill
