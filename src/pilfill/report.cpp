#include "pil/pilfill/report.hpp"

#include <fstream>
#include <ostream>

#include "pil/obs/json.hpp"
#include "pil/simd/simd.hpp"
#include "pil/util/error.hpp"
#include "pil/version.hpp"

namespace pil::pilfill {

namespace {

void write_density_stats(obs::JsonWriter& w, const grid::DensityStats& s) {
  w.begin_object();
  w.kv("min", s.min_density);
  w.kv("max", s.max_density);
  w.kv("mean", s.mean_density);
  w.kv("variation", s.variation());
  w.end_object();
}

void write_config(obs::JsonWriter& w, const FlowConfig& c) {
  w.begin_object();
  w.kv("layer", static_cast<long long>(c.layer));
  w.kv("window_um", c.window_um);
  w.kv("r", c.r);
  w.kv("threads", c.threads);
  w.kv("simd_backend", simd::backend_name());
  w.kv("seed", static_cast<long long>(c.seed));
  w.kv("objective",
       c.objective == Objective::kWeighted ? "weighted" : "non-weighted");
  w.kv("target_engine", to_string(c.target_engine));
  w.kv("solver_slack_mode", fill::to_string(c.solver_mode));
  w.kv("fill_style",
       c.style == cap::FillStyle::kFloating ? "floating" : "grounded");
  w.kv("switch_factor", c.switch_factor);
  w.kv("tile_deadline_seconds", c.tile_deadline_seconds);
  w.kv("flow_deadline_seconds", c.flow_deadline_seconds);
  w.kv("degrade_on_failure", c.degrade_on_failure);
  w.kv("fail_fast", c.fail_fast);
  if (!c.fault_spec.empty()) w.kv("fault_spec", c.fault_spec);
  w.key("rules");
  w.begin_object();
  w.kv("feature_um", c.rules.feature_um);
  w.kv("gap_um", c.rules.gap_um);
  w.kv("buffer_um", c.rules.buffer_um);
  w.end_object();
  w.end_object();
}

}  // namespace

void write_method_result_json(obs::JsonWriter& w, const MethodResult& mr) {
  w.begin_object();
  w.kv("method", to_string(mr.method));
  w.kv("delay_ps", mr.impact.delay_ps);
  w.kv("weighted_delay_ps", mr.impact.weighted_delay_ps);
  w.kv("exact_sink_delay_ps", mr.impact.exact_sink_delay_ps);
  w.kv("solve_seconds", mr.solve_seconds);
  w.kv("eval_seconds", mr.eval_seconds);
  w.kv("placed", mr.placed);
  w.kv("shortfall", mr.shortfall);
  w.kv("features_unmapped", mr.impact.unmapped);
  w.kv("bb_nodes", mr.bb_nodes);
  w.kv("lp_solves", mr.lp_solves);
  w.kv("simplex_iterations", mr.simplex_iterations);
  w.kv("tiles_node_limit", mr.tiles_node_limit);
  w.kv("tiles_degraded", mr.tiles_degraded);
  w.kv("tiles_failed", mr.tiles_failed);
  w.kv("max_ilp_gap", mr.max_ilp_gap);
  if (!mr.failures.empty()) {
    w.key("failures");
    w.begin_array();
    for (const TileFailure& f : mr.failures) {
      w.begin_object();
      w.kv("tile", f.tile);
      w.kv("method", to_string(f.method));
      w.kv("served_by", to_string(f.served_by));
      w.kv("reason", to_string(f.reason));
      w.kv("ilp_status", ilp::to_string(f.ilp_status));
      w.kv("lp_status", lp::to_string(f.lp_status));
      w.kv("used_incumbent", f.used_incumbent);
      if (!f.detail.empty()) w.kv("detail", f.detail);
      w.end_object();
    }
    w.end_array();
  }
  w.key("density_after");
  write_density_stats(w, mr.density_after);
  w.end_object();
}

void write_run_report(std::ostream& os, const FlowConfig& config,
                      const FlowResult& result,
                      const RunReportOptions& options) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "pil.run_report.v1");
  w.kv("tool", options.tool);
  w.kv("version", kVersionString);
  if (!options.input.empty()) w.kv("input", options.input);

  w.key("config");
  write_config(w, config);

  w.key("prep");
  w.begin_object();
  w.kv("seconds", result.prep_seconds);
  w.key("stages");
  w.begin_object();
  w.kv("dissection", result.prep_stages.dissection);
  w.kv("density_map", result.prep_stages.density_map);
  w.kv("rc_extraction", result.prep_stages.rc_extraction);
  w.kv("slack_extraction", result.prep_stages.slack_extraction);
  w.kv("targeting", result.prep_stages.targeting);
  w.kv("instances", result.prep_stages.instances);
  w.end_object();
  w.end_object();

  w.key("density_before");
  write_density_stats(w, result.density_before);
  w.kv("total_capacity", result.total_capacity);

  w.key("target");
  w.begin_object();
  w.kv("total_features", result.target.total_features);
  w.kv("lower_target_used", result.target.lower_target_used);
  w.kv("upper_bound_used", result.target.upper_bound_used);
  w.key("density_after_target");
  write_density_stats(w, result.target.after);
  w.end_object();

  w.key("methods");
  w.begin_array();
  for (const MethodResult& mr : result.methods)
    write_method_result_json(w, mr);
  w.end_array();

  if (options.include_metrics) {
    const obs::MetricsSnapshot snap = obs::metrics().snapshot();
    if (!snap.empty()) {
      w.key("metrics");
      snap.write_json(w);
    }
  }
  w.end_object();
  os << '\n';
}

void write_run_report_file(const std::string& path, const FlowConfig& config,
                           const FlowResult& result,
                           const RunReportOptions& options) {
  std::ofstream os(path);
  PIL_REQUIRE(os.good(), "cannot open report file '" + path + "'");
  write_run_report(os, config, result, options);
  os.flush();
  PIL_REQUIRE(os.good(), "failed writing report file '" + path + "'");
}

}  // namespace pil::pilfill
