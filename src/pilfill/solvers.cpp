#include "pil/pilfill/solvers.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "pil/obs/journal.hpp"
#include "pil/simd/simd.hpp"
#include "pil/util/fault.hpp"
#include "pil/util/log.hpp"

namespace pil::pilfill {

namespace {

double res_factor(const InstanceColumn& c, Objective obj) {
  return obj == Objective::kWeighted ? c.res_weighted : c.res_nonweighted;
}

TileSolveResult make_result(const TileInstance& inst) {
  TileSolveResult r;
  r.counts.assign(inst.cols.size(), 0);
  return r;
}

void finish(const TileInstance& inst, TileSolveResult& r) {
  r.placed = std::accumulate(r.counts.begin(), r.counts.end(), 0);
  r.shortfall = inst.required - r.placed;
  PIL_ASSERT(r.shortfall >= 0, "placed more features than required");
  for (std::size_t k = 0; k < r.counts.size(); ++k)
    PIL_ASSERT(r.counts[k] >= 0 && r.counts[k] <= inst.cols[k].num_sites,
               "column capacity violated");
}

/// Feasible feature budget for this tile.
int budget(const TileInstance& inst) {
  return std::min(inst.required, inst.capacity());
}

/// An incumbent exists for kOptimal, and for kNodeLimit/kDeadline when the
/// search found one before the budget ran out (x left empty otherwise).
bool has_usable_solution(const ilp::IlpSolution& sol) {
  return sol.status == ilp::IlpStatus::kOptimal ||
         ((sol.status == ilp::IlpStatus::kNodeLimit ||
           sol.status == ilp::IlpStatus::kDeadline) &&
          !sol.x.empty());
}

void record_ilp_stats(const ilp::IlpSolution& sol, TileSolveResult& r) {
  r.bb_nodes = sol.nodes_explored;
  r.lp_solves = sol.lp_solves;
  r.simplex_iterations = sol.lp_iterations;
  r.dual_iterations = sol.dual_iterations;
  r.warm_starts = sol.warm_starts;
  r.root_basis = sol.root_basis;
  r.ilp_status = sol.status;
  r.lp_status = sol.lp_status;
  if (has_usable_solution(sol) && sol.status != ilp::IlpStatus::kOptimal)
    r.ilp_gap = sol.gap();
}

}  // namespace

std::vector<double> column_cost_table(const SolverContext& ctx, double d_um,
                                      int capacity) {
  PIL_REQUIRE(ctx.model != nullptr, "cost table needs a coupling model");
  std::vector<double> t(static_cast<std::size_t>(capacity) + 1, 0.0);
  if (ctx.style == cap::FillStyle::kFloating) {
    PIL_REQUIRE(ctx.lut != nullptr, "floating cost table needs the LUT");
    const auto& lut = ctx.lut->table(d_um, capacity);
    for (int n = 1; n <= capacity; ++n) t[n] = lut[n] * ctx.switch_factor;
  } else {
    for (int n = 1; n <= capacity; ++n)
      t[n] = ctx.model->grounded_column_delta_line_cap_ff(
                 n, ctx.rules.feature_um, ctx.rules.buffer_um, d_um) *
             ctx.switch_factor;
  }
  return t;
}

const char* to_string(Method m) {
  switch (m) {
    case Method::kNormal: return "Normal";
    case Method::kIlp1: return "ILP-I";
    case Method::kIlp2: return "ILP-II";
    case Method::kGreedy: return "Greedy";
    case Method::kConvex: return "Convex";
  }
  return "?";
}

TileSolveResult solve_tile_normal(const TileInstance& inst, Rng& rng) {
  TileSolveResult r = make_result(inst);
  int remaining_total = inst.capacity();
  std::vector<int> remaining(inst.cols.size());
  for (std::size_t k = 0; k < inst.cols.size(); ++k)
    remaining[k] = inst.cols[k].num_sites;

  // Uniform sampling of slack sites without replacement: each placement
  // picks a site uniformly among the still-free ones.
  for (int placed = budget(inst); placed > 0; --placed) {
    std::int64_t pick = rng.uniform_int(0, remaining_total - 1);
    std::size_t k = 0;
    while (pick >= remaining[k]) {
      pick -= remaining[k];
      ++k;
    }
    r.counts[k] += 1;
    remaining[k] -= 1;
    remaining_total -= 1;
  }
  finish(inst, r);
  return r;
}

TileSolveResult solve_tile_greedy(const TileInstance& inst,
                                  const SolverContext& ctx) {
  PIL_REQUIRE(ctx.model != nullptr, "greedy needs a coupling model");
  TileSolveResult r = make_result(inst);

  // Figure 8, steps 11-13: key each column by the delay it would add if
  // filled to capacity, then fill the cheapest columns completely. The
  // full-capacity delta-caps and resistance factors are gathered into SoA
  // columns and keyed in one kernel pass; sidelined columns (one-sided or
  // empty) carry zeros through the kernel and keep their key of 0.0.
  const std::size_t n = inst.cols.size();
  std::vector<double> dcap(n, 0.0);
  std::vector<double> rf(n, 0.0);
  std::vector<double> keys(n);
  for (std::size_t k = 0; k < n; ++k) {
    const InstanceColumn& c = inst.cols[k];
    if (!c.two_sided || c.num_sites == 0) continue;
    if (ctx.style == cap::FillStyle::kFloating) {
      PIL_REQUIRE(ctx.lut != nullptr, "greedy floating fill needs the LUT");
      dcap[k] = ctx.lut->table(c.d, c.num_sites)[c.num_sites];
    } else {
      dcap[k] = ctx.model->grounded_column_delta_line_cap_ff(
          c.num_sites, ctx.rules.feature_um, ctx.rules.buffer_um, c.d);
    }
    rf[k] = res_factor(c, ctx.objective);
  }
  simd::kernels().scaled_scores(dcap.data(), rf.data(), ctx.switch_factor, n,
                                keys.data());
  std::vector<std::pair<double, int>> order;
  order.reserve(n);
  for (std::size_t k = 0; k < n; ++k)
    order.emplace_back(keys[k], static_cast<int>(k));
  std::sort(order.begin(), order.end());

  int todo = budget(inst);
  for (const auto& [key, k] : order) {
    if (todo == 0) break;
    const int take = std::min(todo, inst.cols[k].num_sites);
    r.counts[k] = take;
    todo -= take;
  }
  finish(inst, r);
  return r;
}

TileSolveResult solve_tile_ilp1(const TileInstance& inst,
                                const SolverContext& ctx) {
  PIL_REQUIRE(ctx.model != nullptr, "ILP-I needs a coupling model");
  PIL_REQUIRE(ctx.style == cap::FillStyle::kFloating,
              "ILP-I's linear model only applies to floating fill");
  TileSolveResult r = make_result(inst);
  const int f = budget(inst);
  if (f == 0) {
    finish(inst, r);
    return r;
  }
  if (f == inst.capacity()) {  // trivially full
    for (std::size_t k = 0; k < inst.cols.size(); ++k)
      r.counts[k] = inst.cols[k].num_sites;
    finish(inst, r);
    return r;
  }

  // min sum slope_k * m_k  s.t.  sum m_k = F, 0 <= m_k <= C_k integer,
  // where slope_k is the per-feature *linear-model* delay (Eq. 6 x Eq. 13).
  std::vector<double> slope(inst.cols.size(), 0.0);
  double max_slope = 0.0;
  for (std::size_t k = 0; k < inst.cols.size(); ++k) {
    const InstanceColumn& c = inst.cols[k];
    if (c.two_sided) {
      slope[k] = ctx.model->column_delta_cap_linear_ff(1, ctx.rules.feature_um,
                                                       c.d) *
                 res_factor(c, ctx.objective);
      max_slope = std::max(max_slope, slope[k]);
    }
  }
  const double scale = max_slope > 0 ? 1.0 / max_slope : 1.0;

  lp::LpProblem prob;
  std::vector<lp::RowEntry> sum_row;
  for (std::size_t k = 0; k < inst.cols.size(); ++k) {
    const int var = prob.add_var(0.0, inst.cols[k].num_sites,
                                 slope[k] * scale);
    sum_row.push_back({var, 1.0});
  }
  prob.add_row(lp::Sense::kEq, f, std::move(sum_row));

  const std::vector<bool> integer(inst.cols.size(), true);
  const ilp::IlpSolution sol = ilp::solve_ilp(prob, integer, ctx.ilp);
  record_ilp_stats(sol, r);
  if (has_usable_solution(sol)) {
    for (std::size_t k = 0; k < inst.cols.size(); ++k)
      r.counts[k] = static_cast<int>(std::lround(sol.x[k]));
  } else {
    PIL_WARN("ILP-I tile " << inst.tile_flat << " unsolved ("
             << to_string(sol.status) << "); requirement becomes shortfall");
  }
  finish(inst, r);
  return r;
}

TileSolveResult solve_tile_ilp2(const TileInstance& inst,
                                const SolverContext& ctx) {
  PIL_REQUIRE(ctx.lut != nullptr, "ILP-II needs a capacitance LUT");
  // Grounded fill has a step cost (all counts >= 1 cost the same), which
  // turns MDFC into a set-cover-like problem whose binary-expansion LP
  // relaxation is weak -- branch-and-bound degenerates. Use Greedy for
  // grounded fill; ILP-II is defined on the convex floating model.
  PIL_REQUIRE(ctx.style == cap::FillStyle::kFloating,
              "ILP-II requires the floating-fill model");
  TileSolveResult r = make_result(inst);
  const int f = budget(inst);
  if (f == 0) {
    finish(inst, r);
    return r;
  }
  if (f == inst.capacity()) {
    for (std::size_t k = 0; k < inst.cols.size(); ++k)
      r.counts[k] = inst.cols[k].num_sites;
    finish(inst, r);
    return r;
  }

  // Binary expansion (Eqs. 16-23): y_{k,n} = 1 iff column k holds exactly n
  // features. Costs come from the pre-built lookup table f(n, d_k).
  // First pass: collect costs and the normalization scale.
  struct ColVars {
    int first_var = -1;  // vars first_var .. first_var + num_sites - 1
  };
  std::vector<ColVars> cv(inst.cols.size());
  double max_cost = 0.0;
  std::vector<std::vector<double>> costs(inst.cols.size());
  for (std::size_t k = 0; k < inst.cols.size(); ++k) {
    const InstanceColumn& c = inst.cols[k];
    costs[k].assign(c.num_sites + 1, 0.0);
    if (c.two_sided && c.num_sites > 0) {
      const std::vector<double> table =
          column_cost_table(ctx, c.d, c.num_sites);
      const double rf = res_factor(c, ctx.objective);
      for (int n = 1; n <= c.num_sites; ++n) {
        costs[k][n] = table[n] * rf;
        max_cost = std::max(max_cost, costs[k][n]);
      }
    }
  }
  const double scale = max_cost > 0 ? 1.0 / max_cost : 1.0;

  lp::LpProblem prob;
  std::vector<lp::RowEntry> sum_row;
  for (std::size_t k = 0; k < inst.cols.size(); ++k) {
    const InstanceColumn& c = inst.cols[k];
    if (c.num_sites == 0) continue;
    std::vector<lp::RowEntry> sos_row;
    for (int n = 1; n <= c.num_sites; ++n) {
      const int var = prob.add_var(0.0, 1.0, costs[k][n] * scale);
      if (cv[k].first_var < 0) cv[k].first_var = var;
      sum_row.push_back({var, static_cast<double>(n)});
      sos_row.push_back({var, 1.0});
    }
    // At most one count level selected per column (none = zero features).
    prob.add_row(lp::Sense::kLe, 1.0, std::move(sos_row));
  }
  prob.add_row(lp::Sense::kEq, f, std::move(sum_row));

  const std::vector<bool> integer(prob.num_vars(), true);
  const ilp::IlpSolution sol = ilp::solve_ilp(prob, integer, ctx.ilp);
  record_ilp_stats(sol, r);
  if (has_usable_solution(sol)) {
    for (std::size_t k = 0; k < inst.cols.size(); ++k) {
      if (cv[k].first_var < 0) continue;
      for (int n = 1; n <= inst.cols[k].num_sites; ++n)
        if (sol.x[cv[k].first_var + n - 1] > 0.5) r.counts[k] = n;
    }
  } else {
    PIL_WARN("ILP-II tile " << inst.tile_flat << " unsolved ("
             << to_string(sol.status) << "); requirement becomes shortfall");
  }
  finish(inst, r);
  return r;
}

TileSolveResult solve_tile_convex(const TileInstance& inst,
                                  const SolverContext& ctx) {
  PIL_REQUIRE(ctx.lut != nullptr, "convex allocation needs a capacitance LUT");
  PIL_REQUIRE(ctx.style == cap::FillStyle::kFloating,
              "marginal-cost allocation requires the convex floating model");
  TileSolveResult r = make_result(inst);

  // Marginal cost of the (n+1)-th feature in column k is
  // cost_k(n+1) - cost_k(n), nondecreasing in n (the plate model is convex
  // in the feature count), so repeatedly taking the globally cheapest
  // marginal is exact.
  using Entry = std::pair<double, int>;  // (marginal cost, column)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  auto marginal = [&](std::size_t k, int n_next) {
    const InstanceColumn& c = inst.cols[k];
    if (!c.two_sided) return 0.0;
    const auto& lut = ctx.lut->table(c.d, c.num_sites);
    return (lut[n_next] - lut[n_next - 1]) * ctx.switch_factor *
           res_factor(c, ctx.objective);
  };
  // Seed the heap with every column's first-feature marginal, computed in
  // one delta-scores kernel pass over SoA columns (the incremental
  // re-scoring above stays scalar -- each later marginal is computed once,
  // on demand, from heap order). One-sided columns carry zeros and get the
  // same 0.0 marginal the scalar expression yields.
  const std::size_t n = inst.cols.size();
  std::vector<double> hi(n, 0.0), lo(n, 0.0), rf(n, 0.0), first(n);
  for (std::size_t k = 0; k < n; ++k) {
    const InstanceColumn& c = inst.cols[k];
    if (!c.two_sided || c.num_sites == 0) continue;
    const auto& lut = ctx.lut->table(c.d, c.num_sites);
    hi[k] = lut[1];
    lo[k] = lut[0];
    rf[k] = res_factor(c, ctx.objective);
  }
  simd::kernels().delta_scores(hi.data(), lo.data(), rf.data(),
                               ctx.switch_factor, n, first.data());
  for (std::size_t k = 0; k < inst.cols.size(); ++k)
    if (inst.cols[k].num_sites > 0)
      heap.emplace(first[k], static_cast<int>(k));

  for (int todo = budget(inst); todo > 0; --todo) {
    PIL_ASSERT(!heap.empty(), "capacity accounting mismatch");
    const auto [cost, k] = heap.top();
    heap.pop();
    r.counts[k] += 1;
    if (r.counts[k] < inst.cols[k].num_sites)
      heap.emplace(marginal(k, r.counts[k] + 1), k);
  }
  finish(inst, r);
  return r;
}

TileSolveResult solve_tile(Method method, const TileInstance& inst,
                           const SolverContext& ctx, Rng& rng) {
  switch (method) {
    case Method::kNormal: return solve_tile_normal(inst, rng);
    case Method::kIlp1: return solve_tile_ilp1(inst, ctx);
    case Method::kIlp2: return solve_tile_ilp2(inst, ctx);
    case Method::kGreedy: return solve_tile_greedy(inst, ctx);
    case Method::kConvex: return solve_tile_convex(inst, ctx);
  }
  throw Error("unknown method");
}

const char* to_string(FailureReason r) {
  switch (r) {
    case FailureReason::kTileDeadline: return "tile_deadline";
    case FailureReason::kFlowDeadline: return "flow_deadline";
    case FailureReason::kNodeLimit: return "node_limit";
    case FailureReason::kIlpError: return "ilp_error";
    case FailureReason::kInjectedFault: return "injected_fault";
    case FailureReason::kException: return "exception";
  }
  return "?";
}

namespace {

/// The degradation ladder: strictly cheaper methods that still meet the
/// density constraint (the paper's own fallback ordering -- ILP blows its
/// budget, Greedy fills the cheapest columns, Normal fills at random).
/// kNormal is the floor and maps to itself.
Method next_ladder_step(Method m) {
  switch (m) {
    case Method::kIlp1:
    case Method::kIlp2:
    case Method::kConvex:
      return Method::kGreedy;
    case Method::kGreedy:
    case Method::kNormal:
      return Method::kNormal;
  }
  return Method::kNormal;
}

/// Zero out a (possibly default-constructed) result so it reports an empty
/// placement for `inst` while keeping any solver stats already recorded.
void reset_placement(const TileInstance& inst, TileSolveResult& r) {
  r.counts.assign(inst.cols.size(), 0);
  r.placed = 0;
  r.shortfall = inst.required;
  r.ilp_gap = 0.0;
}

/// Journal payload decoder covering the pilfill enums (see JournalNamer).
/// Field 'a' always carries a Method; field 'b' a per-kind secondary enum.
const char* journal_field_name(obs::JournalEventKind kind, char field,
                               std::uint64_t value) {
  using K = obs::JournalEventKind;
  if (field == 'a') {
    switch (kind) {
      case K::kMethodBegin:
      case K::kMethodEnd:
      case K::kTileBegin:
      case K::kTileEnd:
      case K::kLadderStep:
      case K::kTileFailure:
      case K::kBasisHit:
      case K::kBasisMiss:
        return value <= static_cast<std::uint64_t>(Method::kConvex)
                   ? to_string(static_cast<Method>(value))
                   : nullptr;
      default:
        return nullptr;
    }
  }
  if (field == 'b') {
    switch (kind) {
      case K::kLadderStep:
      case K::kTileFailure:
        return value <= static_cast<std::uint64_t>(FailureReason::kException)
                   ? to_string(static_cast<FailureReason>(value))
                   : nullptr;
      case K::kDeadlineExpired:
        return value != 0 ? "flow_deadline" : "tile_deadline";
      case K::kFaultInjected:
        return value < static_cast<std::uint64_t>(util::kFaultSiteCount)
                   ? util::to_string(static_cast<util::FaultSite>(value))
                   : nullptr;
      default:
        return nullptr;
    }
  }
  return nullptr;
}

/// Journal one tile-failure record (kind payloads per journal.hpp).
void journal_failure(const TileFailure& f) {
  obs::journal_record(obs::JournalEventKind::kTileFailure,
                      static_cast<std::uint16_t>(f.served_by),
                      static_cast<std::uint32_t>(f.reason),
                      f.used_incumbent ? 1 : 0);
}

}  // namespace

void register_journal_namer() {
  obs::set_journal_namer(&journal_field_name);
}

TileSolveResult solve_tile_guarded(Method method, const TileInstance& inst,
                                   const SolverContext& ctx, Rng& rng) {
  const util::Deadline* flow = ctx.flow_deadline;

  // Attribute every event below (including simplex / B&B milestones deep
  // in the solvers) to this tile, inheriting the session/flow ids the
  // worker pool installed.
  obs::JournalCorrelation corr = obs::journal_correlation();
  corr.tile = inst.tile_flat;
  obs::JournalScope journal_scope(corr);

  TileFailure fail;
  fail.tile = inst.tile_flat;
  fail.method = method;
  fail.served_by = method;

  TileSolveResult primary;
  bool failed = false;
  if (flow != nullptr && flow->expired() && ctx.degrade_on_failure &&
      method != Method::kNormal) {
    // The whole-flow budget is already gone: don't even start the primary
    // solve; serve the tile from the ladder right away.
    failed = true;
    fail.reason = FailureReason::kFlowDeadline;
    fail.detail = "flow deadline expired before tile solve";
    obs::journal_record(obs::JournalEventKind::kDeadlineExpired, 0, 1);
  } else {
    // Per-tile budget, clipped by the flow deadline. Only ILP methods read
    // it (through the B&B/simplex deadline hooks); when neither budget is
    // configured local.ilp.deadline stays null and the solvers skip every
    // clock read.
    std::optional<util::Deadline> tile_deadline;
    SolverContext local = ctx;
    if (local.ilp.deadline == nullptr) {
      if (ctx.tile_deadline_seconds > 0.0) {
        tile_deadline = util::Deadline::after(ctx.tile_deadline_seconds);
        if (flow != nullptr)
          tile_deadline = util::Deadline::sooner(*tile_deadline, *flow);
        local.ilp.deadline = &*tile_deadline;
      } else if (flow != nullptr) {
        local.ilp.deadline = flow;
      }
    }

    try {
      if (util::faults_armed())
        util::maybe_fault(util::FaultSite::kTileSolve,
                          static_cast<std::uint64_t>(inst.tile_flat));
      primary = solve_tile(method, inst, local, rng);
      switch (primary.ilp_status) {
        case ilp::IlpStatus::kOptimal:
          return primary;  // the common case: served directly
        case ilp::IlpStatus::kNodeLimit:
          // An unproven incumbent is still the tile's own method solving
          // it; counted as tiles_node_limit, not a failure (ladder only
          // when the search found nothing at all -- the sum constraint
          // forces placed == budget > 0 for any incumbent).
          if (primary.placed > 0) return primary;
          failed = true;
          fail.reason = FailureReason::kNodeLimit;
          fail.ilp_status = primary.ilp_status;
          fail.lp_status = primary.lp_status;
          fail.detail = "node budget exhausted without an incumbent";
          break;
        case ilp::IlpStatus::kDeadline: {
          const bool flow_expired = flow != nullptr && flow->expired();
          fail.reason = flow_expired ? FailureReason::kFlowDeadline
                                     : FailureReason::kTileDeadline;
          fail.ilp_status = primary.ilp_status;
          fail.lp_status = primary.lp_status;
          obs::journal_record(obs::JournalEventKind::kDeadlineExpired, 0,
                              flow_expired ? 1 : 0);
          if (primary.placed > 0) {
            // Budget ran out but the search had an incumbent: keep it.
            fail.used_incumbent = true;
            fail.detail = "deadline expired; unproven incumbent kept";
            primary.failure = fail;
            journal_failure(fail);
            return primary;
          }
          failed = true;
          fail.detail = "deadline expired without an incumbent";
          break;
        }
        default:  // kError / kInfeasible / kUnbounded
          failed = true;
          fail.reason = FailureReason::kIlpError;
          fail.ilp_status = primary.ilp_status;
          fail.lp_status = primary.lp_status;
          fail.detail = std::string("ILP ended ") +
                        ilp::to_string(primary.ilp_status) + " (LP " +
                        lp::to_string(primary.lp_status) + ")";
          break;
      }
    } catch (const util::InjectedFault& e) {
      failed = true;
      fail.reason = FailureReason::kInjectedFault;
      fail.detail = e.what();
      obs::journal_record(obs::JournalEventKind::kFaultInjected, 0,
                          static_cast<std::uint32_t>(e.site()), e.key());
    } catch (const std::exception& e) {
      failed = true;
      fail.reason = FailureReason::kException;
      fail.detail = e.what();
    }
  }
  PIL_ASSERT(failed, "guarded solve fell through without an outcome");

  // The primary attempt may have died before sizing its result (an
  // exception mid-solve); normalize to an empty placement either way, but
  // keep whatever search stats it accumulated.
  reset_placement(inst, primary);

  if (!ctx.degrade_on_failure) {
    primary.failure = fail;
    journal_failure(fail);
    return primary;
  }

  // Walk the ladder. Each step is strictly cheaper; Normal needs nothing
  // but the instance, so the chain effectively cannot end empty-handed.
  Method step = method;
  while (step != Method::kNormal) {
    step = next_ladder_step(step);
    obs::journal_record(obs::JournalEventKind::kLadderStep,
                        static_cast<std::uint16_t>(step),
                        static_cast<std::uint32_t>(fail.reason));
    try {
      TileSolveResult fb = solve_tile(step, inst, ctx, rng);
      fb.bb_nodes += primary.bb_nodes;
      fb.lp_solves += primary.lp_solves;
      fb.simplex_iterations += primary.simplex_iterations;
      fb.dual_iterations += primary.dual_iterations;
      fb.warm_starts += primary.warm_starts;
      fb.ilp_status = primary.ilp_status;
      fb.lp_status = primary.lp_status;
      fail.served_by = step;
      fb.failure = fail;
      journal_failure(fail);
      return fb;
    } catch (const std::exception& e) {
      fail.detail += std::string("; ") + to_string(step) +
                     " fallback failed: " + e.what();
    }
  }

  // Ladder exhausted (primary was Normal, or every step threw): the tile
  // places nothing and its requirement shows up as shortfall.
  fail.served_by = step;
  primary.failure = fail;
  journal_failure(fail);
  return primary;
}

}  // namespace pil::pilfill
