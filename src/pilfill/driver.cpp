#include "pil/pilfill/driver.hpp"

#include <cmath>

#include "flow_common.hpp"
#include "pil/obs/trace.hpp"
#include "pil/pilfill/budgeted.hpp"
#include "pil/pilfill/session.hpp"
#include "pil/util/stopwatch.hpp"

namespace pil::pilfill {

const char* to_string(TargetEngine e) {
  switch (e) {
    case TargetEngine::kMonteCarlo: return "monte-carlo";
    case TargetEngine::kMinVarLp: return "min-var-lp";
    case TargetEngine::kMinFillLp: return "min-fill-lp";
  }
  return "?";
}

namespace {

/// Validation failures carry a machine-usable field path ("config field
/// <path>: <why>") so a service response can echo which knob was wrong.
/// extract_config_field_path() below is the matching reader.
[[noreturn]] void bad_field(const char* path, const std::string& why) {
  throw Error(std::string("config field ") + path + ": " + why);
}

void check_field(bool ok, const char* path, const char* why) {
  if (!ok) bad_field(path, why);
}

}  // namespace

std::string extract_config_field_path(std::string_view error_message) {
  constexpr std::string_view kMarker = "config field ";
  const std::size_t at = error_message.find(kMarker);
  if (at == std::string_view::npos) return {};
  const std::size_t start = at + kMarker.size();
  const std::size_t colon = error_message.find(':', start);
  if (colon == std::string_view::npos) return {};
  return std::string(error_message.substr(start, colon - start));
}

void ModelConfig::validate() const {
  check_field(std::isfinite(window_um) && window_um > 0, "model.window_um",
              "must be positive and finite");
  check_field(r >= 1, "model.r", "dissection factor must be >= 1");
  check_field(rules.feature_um > 0, "model.rules.feature_um",
              "must be positive");
  check_field(rules.gap_um > 0, "model.rules.gap_um", "must be positive");
  check_field(rules.buffer_um >= 0, "model.rules.buffer_um",
              "must be non-negative");
  check_field(std::isfinite(switch_factor) && switch_factor > 0,
              "model.switch_factor", "must be positive and finite");
  for (const double c : net_criticality)
    check_field(std::isfinite(c) && c >= 0, "model.net_criticality",
                "values must be finite and non-negative");
  for (const int f : required_per_tile)
    check_field(f >= 0, "model.required_per_tile",
                "fill requirements must be non-negative");
}

void ModelConfig::validate(const layout::Layout& layout,
                           const std::vector<Method>& methods) const {
  validate();
  check_field(layer != layout::kInvalidLayer && layer >= 0 &&
                  static_cast<std::size_t>(layer) < layout.num_layers(),
              "model.layer", "is not a layer of the layout");
  if (!required_per_tile.empty()) {
    const grid::Dissection dis(layout.die(), window_um, r);
    check_field(static_cast<int>(required_per_tile.size()) ==
                    dis.num_tiles(),
                "model.required_per_tile",
                "size must match the dissection");
  }
  flow_detail::require_methods_supported(*this, methods);
}

void SolvePolicy::validate() const {
  check_field(threads >= 0, "policy.threads", "must be non-negative");
  check_field(std::isfinite(tile_deadline_seconds) &&
                  tile_deadline_seconds >= 0,
              "policy.tile_deadline_seconds",
              "must be finite and non-negative");
  check_field(std::isfinite(flow_deadline_seconds) &&
                  flow_deadline_seconds >= 0,
              "policy.flow_deadline_seconds",
              "must be finite and non-negative");
  if (!fault_spec.empty()) {
    try {
      util::FaultPlan::parse(fault_spec);
    } catch (const Error& e) {
      bad_field("policy.fault_spec", e.what());
    }
  }
}

void FlowConfig::validate() const {
  model().validate();
  policy().validate();
}

void FlowConfig::validate(const layout::Layout& layout,
                          const std::vector<Method>& methods) const {
  model().validate(layout, methods);
  policy().validate();
}

FlowResult run_pil_fill_flow(const layout::Layout& layout,
                             const FlowConfig& config,
                             const std::vector<Method>& methods) {
  // A one-shot run is a fresh session solved once and discarded: every
  // instance is solved (the cache starts empty), so results and metrics
  // match the historical monolithic driver exactly.
  FillSession session(layout, config);
  return session.solve(methods);
}

std::vector<FlowResult> run_multi_layer_pil_fill_flow(
    const layout::Layout& layout, const FlowConfig& config,
    const std::vector<Method>& methods) {
  std::vector<FlowResult> results;
  results.reserve(layout.num_layers());
  for (std::size_t i = 0; i < layout.num_layers(); ++i) {
    FlowConfig per_layer = config;
    per_layer.layer = static_cast<layout::LayerId>(i);
    // required_per_tile/criticality are layer-agnostic inputs; the per-tile
    // spec cannot be shared across layers.
    per_layer.required_per_tile.clear();
    results.push_back(run_pil_fill_flow(layout, per_layer, methods));
  }
  return results;
}

BudgetedFlowResult run_budgeted_pil_fill_flow(const layout::Layout& layout,
                                              const FlowConfig& config,
                                              const BudgetedConfig& budgets) {
  const layout::Layer& layer = layout.layer(config.layer);

  FillSession session(layout, config);
  BudgetedFlowResult result;
  result.density_before = session.wires().stats();
  result.target = session.target();

  const cap::CouplingModel model(layer.eps_r, layer.thickness_um);
  cap::ColumnCapLut lut(model, config.rules.feature_um);
  const SolverContext ctx = flow_detail::make_context(config, model, lut);
  const std::vector<TileInstance> instances = session.instances_snapshot();

  Stopwatch watch;
  {
    obs::TraceSpan span("budgeted_solve");
    result.allocation = solve_budgeted(instances, ctx, budgets,
                                       static_cast<int>(layout.num_nets()));
  }
  result.solve_seconds = watch.seconds();

  for (std::size_t i = 0; i < instances.size(); ++i)
    flow_detail::append_rects(instances[i], result.allocation.counts[i],
                              session.solver_slack(), config.rules,
                              result.features);

  const DelayImpactEvaluator evaluator(session.global_slack(),
                                       session.pieces(), model, config.rules,
                                       flow_detail::make_eval_options(config));
  result.impact = evaluator.evaluate_rects(result.features);
  return result;
}

}  // namespace pil::pilfill
