#include "pil/pilfill/driver.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <string>
#include <thread>

#include "pil/obs/metrics.hpp"
#include "pil/obs/trace.hpp"
#include "pil/pilfill/budgeted.hpp"
#include "pil/util/log.hpp"
#include "pil/util/stopwatch.hpp"

namespace pil::pilfill {

namespace {

using fill::SlackColumn;
using fill::SlackColumns;
using fill::SlackMode;

grid::Dissection timed_dissection(const layout::Layout& layout,
                                  const FlowConfig& config, double& accum) {
  obs::TraceSpan span("prep.dissection");
  ScopedTimer timer(accum);
  return grid::Dissection(layout.die(), config.window_um, config.r);
}

std::vector<rctree::RcTree> timed_trees(const layout::Layout& layout,
                                        double& accum) {
  obs::TraceSpan span("prep.rc_trees");
  ScopedTimer timer(accum);
  return rctree::build_all_trees(layout);
}

std::vector<rctree::WirePiece> timed_pieces(
    const std::vector<rctree::RcTree>& trees, double& accum) {
  ScopedTimer timer(accum);
  return fill::flatten_pieces(trees);
}

SlackColumns timed_slack(const layout::Layout& layout,
                         const grid::Dissection& dissection,
                         const std::vector<rctree::WirePiece>& pieces,
                         const FlowConfig& config, SlackMode mode,
                         double& accum) {
  obs::TraceSpan span("prep.slack_columns");
  ScopedTimer timer(accum);
  return fill::extract_slack_columns(layout, dissection, pieces, config.layer,
                                     config.rules, mode);
}

/// Everything the flow computes before any method-specific solving:
/// dissection, wire density, RC pieces, slack columns, fill requirements,
/// and the per-tile instances. Shared by the per-tile and budgeted flows.
/// Every stage is individually timed into `stages` (and traced when a
/// trace session is attached).
struct FlowPrep {
  StageSeconds stages;  // declared first: the timed initializers below fill it
  grid::Dissection dissection;
  grid::DensityMap wires;
  std::vector<rctree::RcTree> trees;
  std::vector<rctree::WirePiece> pieces;
  SlackColumns global;               // SlackColumn-III, always present
  std::optional<SlackColumns> alt;   // solver-facing columns if mode != III
  density::FillTargetResult target;
  std::vector<TileInstance> instances;
  double prep_seconds = 0.0;

  const SlackColumns& solver_slack() const { return alt ? *alt : global; }

  FlowPrep(const layout::Layout& layout, const FlowConfig& config)
      : dissection(timed_dissection(layout, config, stages.dissection)),
        wires(dissection),
        trees(timed_trees(layout, stages.rc_extraction)),
        pieces(timed_pieces(trees, stages.rc_extraction)),
        global(timed_slack(layout, dissection, pieces, config, SlackMode::kIII,
                           stages.slack_extraction)) {
    {
      obs::TraceSpan span("prep.density_map");
      ScopedTimer timer(stages.density_map);
      wires.add_layer_wires(layout, config.layer);
      wires.add_layer_metal_blockages(layout, config.layer);
    }
    if (config.solver_mode != SlackMode::kIII)
      alt = timed_slack(layout, dissection, pieces, config, config.solver_mode,
                        stages.slack_extraction);

    // Per-tile fill requirements from the global capacity inventory (or a
    // caller-provided spec).
    {
      obs::TraceSpan span("prep.targeting");
      ScopedTimer timer(stages.targeting);
      std::vector<int> capacity(dissection.num_tiles());
      for (int t = 0; t < dissection.num_tiles(); ++t)
        capacity[t] = global.tile_capacity(t);
      if (config.required_per_tile.empty()) {
        switch (config.target_engine) {
          case TargetEngine::kMonteCarlo:
            target = density::compute_fill_amounts_mc(wires, capacity,
                                                      config.rules,
                                                      config.target);
            break;
          case TargetEngine::kMinVarLp:
            target = density::compute_fill_amounts_lp(wires, capacity,
                                                      config.rules,
                                                      config.target);
            break;
          case TargetEngine::kMinFillLp:
            target = density::compute_fill_amounts_min_fill_lp(
                wires, capacity, config.rules, config.target);
            break;
        }
      } else {
        PIL_REQUIRE(static_cast<int>(config.required_per_tile.size()) ==
                        dissection.num_tiles(),
                    "required_per_tile size must match the dissection");
        target.features_per_tile = config.required_per_tile;
        target.before = wires.stats();
        grid::DensityMap after = wires;
        for (int t = 0; t < dissection.num_tiles(); ++t) {
          PIL_REQUIRE(config.required_per_tile[t] >= 0,
                      "negative fill requirement");
          target.total_features += config.required_per_tile[t];
          after.add_area(dissection.tile_unflat(t),
                         config.required_per_tile[t] *
                             config.rules.feature_area());
        }
        target.after = after.stats();
      }
    }

    {
      obs::TraceSpan span("prep.instances");
      ScopedTimer timer(stages.instances);
      instances.reserve(dissection.num_tiles());
      for (int t = 0; t < dissection.num_tiles(); ++t) {
        const int required = target.features_per_tile[t];
        if (required == 0) continue;
        instances.push_back(build_tile_instance(t, required, solver_slack(),
                                                pieces,
                                                config.net_criticality));
      }
    }
    prep_seconds = stages.total();

    if (obs::metrics_enabled()) {
      auto& reg = obs::metrics();
      reg.gauge("pilfill.prep.dissection_seconds").add(stages.dissection);
      reg.gauge("pilfill.prep.density_map_seconds").add(stages.density_map);
      reg.gauge("pilfill.prep.rc_extraction_seconds").add(stages.rc_extraction);
      reg.gauge("pilfill.prep.slack_extraction_seconds")
          .add(stages.slack_extraction);
      reg.gauge("pilfill.prep.targeting_seconds").add(stages.targeting);
      reg.gauge("pilfill.prep.instances_seconds").add(stages.instances);
      reg.counter("pilfill.prep.tiles").add(dissection.num_tiles());
      reg.counter("pilfill.prep.instances").add(
          static_cast<long long>(instances.size()));
    }
  }
};

SolverContext make_context(const FlowConfig& config,
                           const cap::CouplingModel& model,
                           cap::ColumnCapLut& lut) {
  SolverContext ctx;
  ctx.model = &model;
  ctx.lut = &lut;
  ctx.rules = config.rules;
  ctx.objective = config.objective;
  ctx.ilp = config.ilp;
  ctx.style = config.style;
  ctx.switch_factor = config.switch_factor;
  return ctx;
}

EvaluatorOptions make_eval_options(const FlowConfig& config) {
  EvaluatorOptions options;
  options.style = config.style;
  options.switch_factor = config.switch_factor;
  return options;
}

/// Turn per-instance-column counts into feature rectangles. All methods
/// stack deterministically from the bottom of each part; Normal's random
/// *site choice within a column* is electrically irrelevant (the
/// series-plate model sees only the count), so bottom-stacking keeps the
/// geometry simple without biasing any metric.
void append_rects(const TileInstance& inst, const std::vector<int>& counts,
                  const SlackColumns& slack, const fill::FillRules& rules,
                  std::vector<geom::Rect>& out) {
  for (std::size_t k = 0; k < inst.cols.size(); ++k) {
    const int m = counts[k];
    if (m == 0) continue;
    const InstanceColumn& ic = inst.cols[k];
    const SlackColumn& col = slack.columns()[ic.column];
    for (int i = 0; i < m; ++i)
      out.push_back(slack.site_rect(col, ic.first_site + i, rules));
  }
}

/// Fold one tile's solver internals into the method aggregate.
void accumulate_tile_stats(const TileSolveResult& tile, MethodResult& mr) {
  mr.placed += tile.placed;
  mr.shortfall += tile.shortfall;
  mr.bb_nodes += tile.bb_nodes;
  mr.lp_solves += tile.lp_solves;
  mr.simplex_iterations += tile.simplex_iterations;
  switch (tile.ilp_status) {
    case ilp::IlpStatus::kOptimal:
      break;
    case ilp::IlpStatus::kNodeLimit:
      ++mr.tiles_node_limit;
      mr.max_ilp_gap = std::max(mr.max_ilp_gap, tile.ilp_gap);
      break;
    default:
      ++mr.tiles_error;
      break;
  }
}

/// Publish one solved method's aggregates into the global registry.
void publish_method_metrics(const MethodResult& mr, std::size_t instances) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::metrics();
  const char* m = to_string(mr.method);
  auto name = [&](const char* base) { return obs::labeled(base, {{"method", m}}); };
  reg.counter(name("pilfill.tiles_solved")).add(static_cast<long long>(instances));
  reg.counter(name("pilfill.features_placed")).add(mr.placed);
  reg.counter(name("pilfill.shortfall")).add(mr.shortfall);
  reg.counter(name("pil.ilp.bb_nodes")).add(mr.bb_nodes);
  reg.counter(name("pil.ilp.lp_solves")).add(mr.lp_solves);
  reg.counter(name("pil.lp.simplex_iterations")).add(mr.simplex_iterations);
  reg.counter(name("pilfill.tiles_node_limit")).add(mr.tiles_node_limit);
  reg.counter(name("pilfill.tiles_error")).add(mr.tiles_error);
  reg.gauge(name("pilfill.solve_seconds")).add(mr.solve_seconds);
  reg.gauge(name("pilfill.eval_seconds")).add(mr.eval_seconds);
}

}  // namespace

const char* to_string(TargetEngine e) {
  switch (e) {
    case TargetEngine::kMonteCarlo: return "monte-carlo";
    case TargetEngine::kMinVarLp: return "min-var-lp";
    case TargetEngine::kMinFillLp: return "min-fill-lp";
  }
  return "?";
}

FlowResult run_pil_fill_flow(const layout::Layout& layout,
                             const FlowConfig& config,
                             const std::vector<Method>& methods) {
  config.rules.validate();
  const layout::Layer& layer = layout.layer(config.layer);

  const FlowPrep prep(layout, config);
  FlowResult result;
  result.density_before = prep.wires.stats();
  result.total_capacity = prep.global.total_capacity();
  result.target = prep.target;
  result.prep_seconds = prep.prep_seconds;
  result.prep_stages = prep.stages;

  const cap::CouplingModel model(layer.eps_r, layer.thickness_um);
  cap::ColumnCapLut lut(model, config.rules.feature_um);
  const DelayImpactEvaluator evaluator(prep.global, prep.pieces, model,
                                       config.rules,
                                       make_eval_options(config));
  const SolverContext ctx = make_context(config, model, lut);

  for (const Method method : methods) {
    obs::TraceSpan method_span(
        "method", std::string("{\"method\":\"") + to_string(method) + "\"}");
    MethodResult mr;
    mr.method = method;
    mr.placement.features_per_tile.assign(prep.dissection.num_tiles(), 0);
    // Per-tile RNG streams keep Normal's placement identical no matter how
    // tiles are distributed over threads.
    const std::uint64_t method_salt =
        config.seed ^ (0x9e37u + static_cast<unsigned>(method) * 0x85ebu);

    Stopwatch solve_watch;
    std::vector<TileSolveResult> solved(prep.instances.size());
    const int threads =
        std::clamp(config.threads, 1,
                   static_cast<int>(prep.instances.size()) + 1);
    auto solve_range = [&](SolverContext local_ctx, std::atomic<size_t>& next,
                           int worker) {
      // Hot-path handles resolved once per worker: recording a tile's solve
      // time is then one lock-free histogram update. With no sinks attached
      // the loop body is exactly the uninstrumented solve.
      obs::Histogram* hist = nullptr;
      if (obs::metrics_enabled())
        hist = &obs::metrics().histogram(obs::labeled(
            "pilfill.tile_solve_seconds",
            {{"method", to_string(method)},
             {"thread", std::to_string(worker)}}));
      const bool tracing = obs::trace_session() != nullptr;
      for (std::size_t i = next.fetch_add(1); i < prep.instances.size();
           i = next.fetch_add(1)) {
        Rng rng(method_salt ^
                (static_cast<std::uint64_t>(prep.instances[i].tile_flat) *
                 0x9E3779B97F4A7C15ull));
        if (hist || tracing) {
          obs::TraceSpan span(
              "tile_solve",
              tracing ? "{\"tile\":" +
                            std::to_string(prep.instances[i].tile_flat) +
                            ",\"method\":\"" + to_string(method) + "\"}"
                      : std::string());
          Stopwatch tile_watch;
          solved[i] = solve_tile(method, prep.instances[i], local_ctx, rng);
          if (hist) hist->observe(tile_watch.seconds());
        } else {
          solved[i] = solve_tile(method, prep.instances[i], local_ctx, rng);
        }
      }
    };
    if (threads <= 1) {
      std::atomic<size_t> next{0};
      solve_range(ctx, next, 0);
    } else {
      // The LUT cache is not thread-safe; each worker owns one.
      std::atomic<size_t> next{0};
      std::vector<cap::ColumnCapLut> luts(
          threads, cap::ColumnCapLut(model, config.rules.feature_um));
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (int w = 0; w < threads; ++w) {
        SolverContext local_ctx = ctx;
        local_ctx.lut = &luts[w];
        pool.emplace_back(solve_range, local_ctx, std::ref(next), w);
      }
      for (auto& t : pool) t.join();
    }
    mr.solve_seconds = solve_watch.seconds();

    for (std::size_t i = 0; i < prep.instances.size(); ++i) {
      const TileInstance& inst = prep.instances[i];
      accumulate_tile_stats(solved[i], mr);
      mr.placement.features_per_tile[inst.tile_flat] = solved[i].placed;
      append_rects(inst, solved[i].counts, prep.solver_slack(), config.rules,
                   mr.placement.features);
    }

    {
      obs::TraceSpan eval_span(
          "evaluate",
          std::string("{\"method\":\"") + to_string(method) + "\"}");
      ScopedTimer eval_timer(mr.eval_seconds);
      mr.impact = evaluator.evaluate_rects(mr.placement.features);
    }

    grid::DensityMap after = prep.wires;
    for (const auto& rect : mr.placement.features) after.add_rect(rect);
    mr.density_after = after.stats();

    publish_method_metrics(mr, prep.instances.size());
    if (mr.tiles_node_limit > 0 || mr.tiles_error > 0)
      PIL_WARN(to_string(method)
               << ": " << mr.tiles_node_limit << " tile(s) hit the B&B node "
               << "budget (worst gap " << mr.max_ilp_gap << "), "
               << mr.tiles_error << " tile(s) failed outright");
    PIL_INFO(to_string(method)
             << ": placed " << mr.placed << " (shortfall " << mr.shortfall
             << "), delay +" << mr.impact.delay_ps << " ps, weighted +"
             << mr.impact.weighted_delay_ps << " ps, "
             << mr.solve_seconds << " s");
    result.methods.push_back(std::move(mr));
  }
  return result;
}

std::vector<FlowResult> run_multi_layer_pil_fill_flow(
    const layout::Layout& layout, const FlowConfig& config,
    const std::vector<Method>& methods) {
  std::vector<FlowResult> results;
  results.reserve(layout.num_layers());
  for (std::size_t i = 0; i < layout.num_layers(); ++i) {
    FlowConfig per_layer = config;
    per_layer.layer = static_cast<layout::LayerId>(i);
    // required_per_tile/criticality are layer-agnostic inputs; the per-tile
    // spec cannot be shared across layers.
    per_layer.required_per_tile.clear();
    results.push_back(run_pil_fill_flow(layout, per_layer, methods));
  }
  return results;
}

BudgetedFlowResult run_budgeted_pil_fill_flow(const layout::Layout& layout,
                                              const FlowConfig& config,
                                              const BudgetedConfig& budgets) {
  config.rules.validate();
  const layout::Layer& layer = layout.layer(config.layer);

  const FlowPrep prep(layout, config);
  BudgetedFlowResult result;
  result.density_before = prep.wires.stats();
  result.target = prep.target;

  const cap::CouplingModel model(layer.eps_r, layer.thickness_um);
  cap::ColumnCapLut lut(model, config.rules.feature_um);
  const SolverContext ctx = make_context(config, model, lut);

  Stopwatch watch;
  {
    obs::TraceSpan span("budgeted_solve");
    result.allocation = solve_budgeted(prep.instances, ctx, budgets,
                                       static_cast<int>(layout.num_nets()));
  }
  result.solve_seconds = watch.seconds();

  for (std::size_t i = 0; i < prep.instances.size(); ++i)
    append_rects(prep.instances[i], result.allocation.counts[i],
                 prep.solver_slack(), config.rules, result.features);

  const DelayImpactEvaluator evaluator(prep.global, prep.pieces, model,
                                       config.rules,
                                       make_eval_options(config));
  result.impact = evaluator.evaluate_rects(result.features);
  return result;
}

}  // namespace pil::pilfill
