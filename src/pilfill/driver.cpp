#include "pil/pilfill/driver.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>

#include "pil/pilfill/budgeted.hpp"
#include "pil/util/log.hpp"
#include "pil/util/stopwatch.hpp"

namespace pil::pilfill {

namespace {

using fill::SlackColumn;
using fill::SlackColumns;
using fill::SlackMode;

/// Everything the flow computes before any method-specific solving:
/// dissection, wire density, RC pieces, slack columns, fill requirements,
/// and the per-tile instances. Shared by the per-tile and budgeted flows.
struct FlowPrep {
  grid::Dissection dissection;
  grid::DensityMap wires;
  std::vector<rctree::RcTree> trees;
  std::vector<rctree::WirePiece> pieces;
  SlackColumns global;               // SlackColumn-III, always present
  std::optional<SlackColumns> alt;   // solver-facing columns if mode != III
  density::FillTargetResult target;
  std::vector<TileInstance> instances;
  double prep_seconds = 0.0;

  const SlackColumns& solver_slack() const { return alt ? *alt : global; }

  FlowPrep(const layout::Layout& layout, const FlowConfig& config)
      : dissection(layout.die(), config.window_um, config.r),
        wires(dissection),
        trees(rctree::build_all_trees(layout)),
        pieces(fill::flatten_pieces(trees)),
        global(fill::extract_slack_columns(layout, dissection, pieces,
                                           config.layer, config.rules,
                                           SlackMode::kIII)) {
    Stopwatch watch;
    wires.add_layer_wires(layout, config.layer);
    wires.add_layer_metal_blockages(layout, config.layer);
    if (config.solver_mode != SlackMode::kIII)
      alt = fill::extract_slack_columns(layout, dissection, pieces,
                                        config.layer, config.rules,
                                        config.solver_mode);

    // Per-tile fill requirements from the global capacity inventory (or a
    // caller-provided spec).
    std::vector<int> capacity(dissection.num_tiles());
    for (int t = 0; t < dissection.num_tiles(); ++t)
      capacity[t] = global.tile_capacity(t);
    if (config.required_per_tile.empty()) {
      switch (config.target_engine) {
        case TargetEngine::kMonteCarlo:
          target = density::compute_fill_amounts_mc(wires, capacity,
                                                    config.rules,
                                                    config.target);
          break;
        case TargetEngine::kMinVarLp:
          target = density::compute_fill_amounts_lp(wires, capacity,
                                                    config.rules,
                                                    config.target);
          break;
        case TargetEngine::kMinFillLp:
          target = density::compute_fill_amounts_min_fill_lp(
              wires, capacity, config.rules, config.target);
          break;
      }
    } else {
      PIL_REQUIRE(static_cast<int>(config.required_per_tile.size()) ==
                      dissection.num_tiles(),
                  "required_per_tile size must match the dissection");
      target.features_per_tile = config.required_per_tile;
      target.before = wires.stats();
      grid::DensityMap after = wires;
      for (int t = 0; t < dissection.num_tiles(); ++t) {
        PIL_REQUIRE(config.required_per_tile[t] >= 0,
                    "negative fill requirement");
        target.total_features += config.required_per_tile[t];
        after.add_area(dissection.tile_unflat(t),
                       config.required_per_tile[t] *
                           config.rules.feature_area());
      }
      target.after = after.stats();
    }

    instances.reserve(dissection.num_tiles());
    for (int t = 0; t < dissection.num_tiles(); ++t) {
      const int required = target.features_per_tile[t];
      if (required == 0) continue;
      instances.push_back(build_tile_instance(t, required, solver_slack(),
                                              pieces, config.net_criticality));
    }
    prep_seconds = watch.seconds();
  }
};

SolverContext make_context(const FlowConfig& config,
                           const cap::CouplingModel& model,
                           cap::ColumnCapLut& lut) {
  SolverContext ctx;
  ctx.model = &model;
  ctx.lut = &lut;
  ctx.rules = config.rules;
  ctx.objective = config.objective;
  ctx.ilp = config.ilp;
  ctx.style = config.style;
  ctx.switch_factor = config.switch_factor;
  return ctx;
}

EvaluatorOptions make_eval_options(const FlowConfig& config) {
  EvaluatorOptions options;
  options.style = config.style;
  options.switch_factor = config.switch_factor;
  return options;
}

/// Turn per-instance-column counts into feature rectangles. All methods
/// stack deterministically from the bottom of each part; Normal's random
/// *site choice within a column* is electrically irrelevant (the
/// series-plate model sees only the count), so bottom-stacking keeps the
/// geometry simple without biasing any metric.
void append_rects(const TileInstance& inst, const std::vector<int>& counts,
                  const SlackColumns& slack, const fill::FillRules& rules,
                  std::vector<geom::Rect>& out) {
  for (std::size_t k = 0; k < inst.cols.size(); ++k) {
    const int m = counts[k];
    if (m == 0) continue;
    const InstanceColumn& ic = inst.cols[k];
    const SlackColumn& col = slack.columns()[ic.column];
    for (int i = 0; i < m; ++i)
      out.push_back(slack.site_rect(col, ic.first_site + i, rules));
  }
}

}  // namespace

const char* to_string(TargetEngine e) {
  switch (e) {
    case TargetEngine::kMonteCarlo: return "monte-carlo";
    case TargetEngine::kMinVarLp: return "min-var-lp";
    case TargetEngine::kMinFillLp: return "min-fill-lp";
  }
  return "?";
}

FlowResult run_pil_fill_flow(const layout::Layout& layout,
                             const FlowConfig& config,
                             const std::vector<Method>& methods) {
  config.rules.validate();
  const layout::Layer& layer = layout.layer(config.layer);

  const FlowPrep prep(layout, config);
  FlowResult result;
  result.density_before = prep.wires.stats();
  result.total_capacity = prep.global.total_capacity();
  result.target = prep.target;
  result.prep_seconds = prep.prep_seconds;

  const cap::CouplingModel model(layer.eps_r, layer.thickness_um);
  cap::ColumnCapLut lut(model, config.rules.feature_um);
  const DelayImpactEvaluator evaluator(prep.global, prep.pieces, model,
                                       config.rules,
                                       make_eval_options(config));
  const SolverContext ctx = make_context(config, model, lut);

  for (const Method method : methods) {
    MethodResult mr;
    mr.method = method;
    mr.placement.features_per_tile.assign(prep.dissection.num_tiles(), 0);
    // Per-tile RNG streams keep Normal's placement identical no matter how
    // tiles are distributed over threads.
    const std::uint64_t method_salt =
        config.seed ^ (0x9e37u + static_cast<unsigned>(method) * 0x85ebu);

    Stopwatch solve_watch;
    std::vector<TileSolveResult> solved(prep.instances.size());
    const int threads =
        std::clamp(config.threads, 1,
                   static_cast<int>(prep.instances.size()) + 1);
    auto solve_range = [&](SolverContext local_ctx, std::atomic<size_t>& next) {
      for (std::size_t i = next.fetch_add(1); i < prep.instances.size();
           i = next.fetch_add(1)) {
        Rng rng(method_salt ^
                (static_cast<std::uint64_t>(prep.instances[i].tile_flat) *
                 0x9E3779B97F4A7C15ull));
        solved[i] = solve_tile(method, prep.instances[i], local_ctx, rng);
      }
    };
    if (threads <= 1) {
      std::atomic<size_t> next{0};
      solve_range(ctx, next);
    } else {
      // The LUT cache is not thread-safe; each worker owns one.
      std::atomic<size_t> next{0};
      std::vector<cap::ColumnCapLut> luts(
          threads, cap::ColumnCapLut(model, config.rules.feature_um));
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (int w = 0; w < threads; ++w) {
        SolverContext local_ctx = ctx;
        local_ctx.lut = &luts[w];
        pool.emplace_back(solve_range, local_ctx, std::ref(next));
      }
      for (auto& t : pool) t.join();
    }
    mr.solve_seconds = solve_watch.seconds();

    for (std::size_t i = 0; i < prep.instances.size(); ++i) {
      const TileInstance& inst = prep.instances[i];
      mr.placed += solved[i].placed;
      mr.shortfall += solved[i].shortfall;
      mr.bb_nodes += solved[i].bb_nodes;
      mr.placement.features_per_tile[inst.tile_flat] = solved[i].placed;
      append_rects(inst, solved[i].counts, prep.solver_slack(), config.rules,
                   mr.placement.features);
    }

    mr.impact = evaluator.evaluate_rects(mr.placement.features);

    grid::DensityMap after = prep.wires;
    for (const auto& rect : mr.placement.features) after.add_rect(rect);
    mr.density_after = after.stats();

    PIL_INFO(to_string(method)
             << ": placed " << mr.placed << " (shortfall " << mr.shortfall
             << "), delay +" << mr.impact.delay_ps << " ps, weighted +"
             << mr.impact.weighted_delay_ps << " ps, "
             << mr.solve_seconds << " s");
    result.methods.push_back(std::move(mr));
  }
  return result;
}

std::vector<FlowResult> run_multi_layer_pil_fill_flow(
    const layout::Layout& layout, const FlowConfig& config,
    const std::vector<Method>& methods) {
  std::vector<FlowResult> results;
  results.reserve(layout.num_layers());
  for (std::size_t i = 0; i < layout.num_layers(); ++i) {
    FlowConfig per_layer = config;
    per_layer.layer = static_cast<layout::LayerId>(i);
    // required_per_tile/criticality are layer-agnostic inputs; the per-tile
    // spec cannot be shared across layers.
    per_layer.required_per_tile.clear();
    results.push_back(run_pil_fill_flow(layout, per_layer, methods));
  }
  return results;
}

BudgetedFlowResult run_budgeted_pil_fill_flow(const layout::Layout& layout,
                                              const FlowConfig& config,
                                              const BudgetedConfig& budgets) {
  config.rules.validate();
  const layout::Layer& layer = layout.layer(config.layer);

  const FlowPrep prep(layout, config);
  BudgetedFlowResult result;
  result.density_before = prep.wires.stats();
  result.target = prep.target;

  const cap::CouplingModel model(layer.eps_r, layer.thickness_um);
  cap::ColumnCapLut lut(model, config.rules.feature_um);
  const SolverContext ctx = make_context(config, model, lut);

  Stopwatch watch;
  result.allocation = solve_budgeted(prep.instances, ctx, budgets,
                                     static_cast<int>(layout.num_nets()));
  result.solve_seconds = watch.seconds();

  for (std::size_t i = 0; i < prep.instances.size(); ++i)
    append_rects(prep.instances[i], result.allocation.counts[i],
                 prep.solver_slack(), config.rules, result.features);

  const DelayImpactEvaluator evaluator(prep.global, prep.pieces, model,
                                       config.rules,
                                       make_eval_options(config));
  result.impact = evaluator.evaluate_rects(result.features);
  return result;
}

}  // namespace pil::pilfill
