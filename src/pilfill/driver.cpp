#include "pil/pilfill/driver.hpp"

#include <cmath>

#include "flow_common.hpp"
#include "pil/obs/trace.hpp"
#include "pil/pilfill/budgeted.hpp"
#include "pil/pilfill/session.hpp"
#include "pil/util/stopwatch.hpp"

namespace pil::pilfill {

const char* to_string(TargetEngine e) {
  switch (e) {
    case TargetEngine::kMonteCarlo: return "monte-carlo";
    case TargetEngine::kMinVarLp: return "min-var-lp";
    case TargetEngine::kMinFillLp: return "min-fill-lp";
  }
  return "?";
}

void FlowConfig::validate() const {
  PIL_REQUIRE(std::isfinite(window_um) && window_um > 0,
              "window_um must be positive and finite");
  PIL_REQUIRE(r >= 1, "dissection factor r must be >= 1");
  rules.validate();
  PIL_REQUIRE(std::isfinite(switch_factor) && switch_factor > 0,
              "switch_factor must be positive and finite");
  for (const double c : net_criticality)
    PIL_REQUIRE(std::isfinite(c) && c >= 0,
                "net_criticality values must be finite and non-negative");
  for (const int f : required_per_tile)
    PIL_REQUIRE(f >= 0, "negative fill requirement");
  PIL_REQUIRE(std::isfinite(tile_deadline_seconds) &&
                  tile_deadline_seconds >= 0,
              "tile_deadline_seconds must be finite and non-negative");
  PIL_REQUIRE(std::isfinite(flow_deadline_seconds) &&
                  flow_deadline_seconds >= 0,
              "flow_deadline_seconds must be finite and non-negative");
  if (!fault_spec.empty())
    util::FaultPlan::parse(fault_spec);  // throws on a malformed spec
}

void FlowConfig::validate(const layout::Layout& layout,
                          const std::vector<Method>& methods) const {
  validate();
  PIL_REQUIRE(layer != layout::kInvalidLayer && layer >= 0 &&
                  static_cast<std::size_t>(layer) < layout.num_layers(),
              "config.layer is not a layer of the layout");
  if (!required_per_tile.empty()) {
    const grid::Dissection dis(layout.die(), window_um, r);
    PIL_REQUIRE(static_cast<int>(required_per_tile.size()) ==
                    dis.num_tiles(),
                "required_per_tile size must match the dissection");
  }
  flow_detail::require_methods_supported(*this, methods);
}

FlowResult run_pil_fill_flow(const layout::Layout& layout,
                             const FlowConfig& config,
                             const std::vector<Method>& methods) {
  // A one-shot run is a fresh session solved once and discarded: every
  // instance is solved (the cache starts empty), so results and metrics
  // match the historical monolithic driver exactly.
  FillSession session(layout, config);
  return session.solve(methods);
}

std::vector<FlowResult> run_multi_layer_pil_fill_flow(
    const layout::Layout& layout, const FlowConfig& config,
    const std::vector<Method>& methods) {
  std::vector<FlowResult> results;
  results.reserve(layout.num_layers());
  for (std::size_t i = 0; i < layout.num_layers(); ++i) {
    FlowConfig per_layer = config;
    per_layer.layer = static_cast<layout::LayerId>(i);
    // required_per_tile/criticality are layer-agnostic inputs; the per-tile
    // spec cannot be shared across layers.
    per_layer.required_per_tile.clear();
    results.push_back(run_pil_fill_flow(layout, per_layer, methods));
  }
  return results;
}

BudgetedFlowResult run_budgeted_pil_fill_flow(const layout::Layout& layout,
                                              const FlowConfig& config,
                                              const BudgetedConfig& budgets) {
  const layout::Layer& layer = layout.layer(config.layer);

  FillSession session(layout, config);
  BudgetedFlowResult result;
  result.density_before = session.wires().stats();
  result.target = session.target();

  const cap::CouplingModel model(layer.eps_r, layer.thickness_um);
  cap::ColumnCapLut lut(model, config.rules.feature_um);
  const SolverContext ctx = flow_detail::make_context(config, model, lut);
  const std::vector<TileInstance> instances = session.instances_snapshot();

  Stopwatch watch;
  {
    obs::TraceSpan span("budgeted_solve");
    result.allocation = solve_budgeted(instances, ctx, budgets,
                                       static_cast<int>(layout.num_nets()));
  }
  result.solve_seconds = watch.seconds();

  for (std::size_t i = 0; i < instances.size(); ++i)
    flow_detail::append_rects(instances[i], result.allocation.counts[i],
                              session.solver_slack(), config.rules,
                              result.features);

  const DelayImpactEvaluator evaluator(session.global_slack(),
                                       session.pieces(), model, config.rules,
                                       flow_detail::make_eval_options(config));
  result.impact = evaluator.evaluate_rects(result.features);
  return result;
}

}  // namespace pil::pilfill
