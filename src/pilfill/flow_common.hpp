#pragma once
/// \file flow_common.hpp
/// Internal helpers shared by the FillSession engine (session.cpp) and the
/// budgeted driver (driver.cpp): solver-context construction, placement
/// assembly, metric publication, and the deterministic worker pool that
/// runs per-tile solves. Not installed; include with a quoted path only.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "pil/obs/metrics.hpp"
#include "pil/obs/trace.hpp"
#include "pil/pilfill/driver.hpp"
#include "pil/util/rng.hpp"
#include "pil/util/stopwatch.hpp"

namespace pil::pilfill::flow_detail {

/// Reject method/style combinations the solvers cannot model: ILP-I,
/// ILP-II, and Convex price fill through the convex floating-fill charge
/// model, so grounded fill is limited to Normal and Greedy.
inline void require_methods_supported(const FlowConfig& config,
                                      const std::vector<Method>& methods) {
  if (config.style != cap::FillStyle::kGrounded) return;
  for (const Method m : methods)
    PIL_REQUIRE(
        m != Method::kIlp1 && m != Method::kIlp2 && m != Method::kConvex,
        std::string("grounded fill supports the Normal and Greedy methods "
                    "only; ") +
            to_string(m) + " requires the floating-fill model");
}

inline SolverContext make_context(const FlowConfig& config,
                                  const cap::CouplingModel& model,
                                  cap::ColumnCapLut& lut) {
  SolverContext ctx;
  ctx.model = &model;
  ctx.lut = &lut;
  ctx.rules = config.rules;
  ctx.objective = config.objective;
  ctx.ilp = config.ilp;
  ctx.style = config.style;
  ctx.switch_factor = config.switch_factor;
  return ctx;
}

inline EvaluatorOptions make_eval_options(const FlowConfig& config) {
  EvaluatorOptions options;
  options.style = config.style;
  options.switch_factor = config.switch_factor;
  return options;
}

/// Turn per-instance-column counts into feature rectangles. All methods
/// stack deterministically from the bottom of each part; Normal's random
/// *site choice within a column* is electrically irrelevant (the
/// series-plate model sees only the count), so bottom-stacking keeps the
/// geometry simple without biasing any metric.
inline void append_rects(const TileInstance& inst,
                         const std::vector<int>& counts,
                         const fill::SlackColumns& slack,
                         const fill::FillRules& rules,
                         std::vector<geom::Rect>& out) {
  for (std::size_t k = 0; k < inst.cols.size(); ++k) {
    const int m = counts[k];
    if (m == 0) continue;
    const InstanceColumn& ic = inst.cols[k];
    const fill::SlackColumn& col = slack.columns()[ic.column];
    for (int i = 0; i < m; ++i)
      out.push_back(slack.site_rect(col, ic.first_site + i, rules));
  }
}

/// Fold one tile's solver internals into the method aggregate.
inline void accumulate_tile_stats(const TileSolveResult& tile,
                                  MethodResult& mr) {
  mr.placed += tile.placed;
  mr.shortfall += tile.shortfall;
  mr.bb_nodes += tile.bb_nodes;
  mr.lp_solves += tile.lp_solves;
  mr.simplex_iterations += tile.simplex_iterations;
  switch (tile.ilp_status) {
    case ilp::IlpStatus::kOptimal:
      break;
    case ilp::IlpStatus::kNodeLimit:
      ++mr.tiles_node_limit;
      mr.max_ilp_gap = std::max(mr.max_ilp_gap, tile.ilp_gap);
      break;
    default:
      ++mr.tiles_error;
      break;
  }
}

/// Publish one solved method's aggregates into the global registry.
/// `tiles_solved` is the number of per-tile solves actually executed (in a
/// one-shot run: every instance; in an incremental re-solve: the dirty set).
inline void publish_method_metrics(const MethodResult& mr,
                                   std::size_t tiles_solved) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::metrics();
  const char* m = to_string(mr.method);
  auto name = [&](const char* base) {
    return obs::labeled(base, {{"method", m}});
  };
  reg.counter(name("pilfill.tiles_solved"))
      .add(static_cast<long long>(tiles_solved));
  reg.counter(name("pilfill.features_placed")).add(mr.placed);
  reg.counter(name("pilfill.shortfall")).add(mr.shortfall);
  reg.counter(name("pil.ilp.bb_nodes")).add(mr.bb_nodes);
  reg.counter(name("pil.ilp.lp_solves")).add(mr.lp_solves);
  reg.counter(name("pil.lp.simplex_iterations")).add(mr.simplex_iterations);
  reg.counter(name("pilfill.tiles_node_limit")).add(mr.tiles_node_limit);
  reg.counter(name("pilfill.tiles_error")).add(mr.tiles_error);
  reg.gauge(name("pilfill.solve_seconds")).add(mr.solve_seconds);
  reg.gauge(name("pilfill.eval_seconds")).add(mr.eval_seconds);
}

/// Solve `todo` tiles with `method` on the shared worker pool. Per-tile RNG
/// streams depend only on (config.seed, method, tile id), so results are
/// deterministic regardless of the thread count and of which tiles are in
/// `todo`. The thread count is clamped to the work size; with more than one
/// worker each owns a private ColumnCapLut (the cache is not thread-safe),
/// while the single-thread path reuses the caller's shared LUT via `ctx`.
inline std::vector<TileSolveResult> solve_instances_parallel(
    Method method, const std::vector<const TileInstance*>& todo,
    const SolverContext& ctx, const cap::CouplingModel& model,
    const FlowConfig& config) {
  // Per-tile RNG streams keep Normal's placement identical no matter how
  // tiles are distributed over threads.
  const std::uint64_t method_salt =
      config.seed ^ (0x9e37u + static_cast<unsigned>(method) * 0x85ebu);
  std::vector<TileSolveResult> solved(todo.size());
  const int threads = std::clamp(
      config.threads, 1, std::max(1, static_cast<int>(todo.size())));
  auto solve_range = [&](SolverContext local_ctx, std::atomic<size_t>& next,
                         int worker) {
    // Hot-path handles resolved once per worker: recording a tile's solve
    // time is then one lock-free histogram update. With no sinks attached
    // the loop body is exactly the uninstrumented solve.
    obs::Histogram* hist = nullptr;
    if (obs::metrics_enabled())
      hist = &obs::metrics().histogram(
          obs::labeled("pilfill.tile_solve_seconds",
                       {{"method", to_string(method)},
                        {"thread", std::to_string(worker)}}));
    const bool tracing = obs::trace_session() != nullptr;
    for (std::size_t i = next.fetch_add(1); i < todo.size();
         i = next.fetch_add(1)) {
      Rng rng(method_salt ^
              (static_cast<std::uint64_t>(todo[i]->tile_flat) *
               0x9E3779B97F4A7C15ull));
      if (hist || tracing) {
        obs::TraceSpan span(
            "tile_solve",
            tracing ? "{\"tile\":" + std::to_string(todo[i]->tile_flat) +
                          ",\"method\":\"" + to_string(method) + "\"}"
                    : std::string());
        Stopwatch tile_watch;
        solved[i] = solve_tile(method, *todo[i], local_ctx, rng);
        if (hist) hist->observe(tile_watch.seconds());
      } else {
        solved[i] = solve_tile(method, *todo[i], local_ctx, rng);
      }
    }
  };
  if (threads <= 1) {
    std::atomic<size_t> next{0};
    solve_range(ctx, next, 0);
  } else {
    // The LUT cache is not thread-safe; each worker owns one.
    std::atomic<size_t> next{0};
    std::vector<cap::ColumnCapLut> luts(
        threads, cap::ColumnCapLut(model, config.rules.feature_um));
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int w = 0; w < threads; ++w) {
      SolverContext local_ctx = ctx;
      local_ctx.lut = &luts[w];
      pool.emplace_back(solve_range, local_ctx, std::ref(next), w);
    }
    for (auto& t : pool) t.join();
  }
  return solved;
}

}  // namespace pil::pilfill::flow_detail
