#pragma once
/// \file flow_common.hpp
/// Internal helpers shared by the FillSession engine (session.cpp) and the
/// budgeted driver (driver.cpp): solver-context construction, placement
/// assembly, metric publication, and the deterministic worker pool that
/// runs per-tile solves. Not installed; include with a quoted path only.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "pil/obs/journal.hpp"
#include "pil/obs/metrics.hpp"
#include "pil/obs/trace.hpp"
#include "pil/pilfill/driver.hpp"
#include "pil/util/deadline.hpp"
#include "pil/util/fault.hpp"
#include "pil/util/rng.hpp"
#include "pil/util/stopwatch.hpp"

namespace pil::pilfill::flow_detail {

/// Reject method/style combinations the solvers cannot model: ILP-I,
/// ILP-II, and Convex price fill through the convex floating-fill charge
/// model, so grounded fill is limited to Normal and Greedy.
inline void require_methods_supported(const ModelConfig& config,
                                      const std::vector<Method>& methods) {
  if (config.style != cap::FillStyle::kGrounded) return;
  for (const Method m : methods)
    PIL_REQUIRE(
        m != Method::kIlp1 && m != Method::kIlp2 && m != Method::kConvex,
        std::string("grounded fill supports the Normal and Greedy methods "
                    "only; ") +
            to_string(m) + " requires the floating-fill model");
}

inline SolverContext make_context(const FlowConfig& config,
                                  const cap::CouplingModel& model,
                                  cap::ColumnCapLut& lut,
                                  const util::Deadline* flow_deadline =
                                      nullptr) {
  SolverContext ctx;
  ctx.model = &model;
  ctx.lut = &lut;
  ctx.rules = config.rules;
  ctx.objective = config.objective;
  ctx.ilp = config.ilp;
  ctx.style = config.style;
  ctx.switch_factor = config.switch_factor;
  ctx.flow_deadline = flow_deadline;
  ctx.tile_deadline_seconds = config.tile_deadline_seconds;
  ctx.degrade_on_failure = config.degrade_on_failure;
  return ctx;
}

inline EvaluatorOptions make_eval_options(const FlowConfig& config) {
  EvaluatorOptions options;
  options.style = config.style;
  options.switch_factor = config.switch_factor;
  return options;
}

/// Turn per-instance-column counts into feature rectangles. All methods
/// stack deterministically from the bottom of each part; Normal's random
/// *site choice within a column* is electrically irrelevant (the
/// series-plate model sees only the count), so bottom-stacking keeps the
/// geometry simple without biasing any metric.
inline void append_rects(const TileInstance& inst,
                         const std::vector<int>& counts,
                         const fill::SlackColumns& slack,
                         const fill::FillRules& rules,
                         std::vector<geom::Rect>& out) {
  for (std::size_t k = 0; k < inst.cols.size(); ++k) {
    const int m = counts[k];
    if (m == 0) continue;
    const InstanceColumn& ic = inst.cols[k];
    const fill::SlackColumn& col = slack.columns()[ic.column];
    for (int i = 0; i < m; ++i)
      out.push_back(slack.site_rect(col, ic.first_site + i, rules));
  }
}

/// Fold one tile's solver internals into the method aggregate. A tile
/// carrying a failure record went through the degradation ladder (or kept
/// an unproven incumbent past a deadline): it counts as degraded when it
/// still produced a placement and failed when it placed nothing while
/// something was required.
inline void accumulate_tile_stats(const TileSolveResult& tile,
                                  MethodResult& mr) {
  mr.placed += tile.placed;
  mr.shortfall += tile.shortfall;
  mr.bb_nodes += tile.bb_nodes;
  mr.lp_solves += tile.lp_solves;
  mr.simplex_iterations += tile.simplex_iterations;
  mr.dual_iterations += tile.dual_iterations;
  mr.warm_starts += tile.warm_starts;
  if (tile.failure.has_value()) {
    if (tile.placed > 0 || tile.shortfall == 0)
      ++mr.tiles_degraded;
    else
      ++mr.tiles_failed;
    mr.failures.push_back(*tile.failure);
    return;
  }
  switch (tile.ilp_status) {
    case ilp::IlpStatus::kOptimal:
      break;
    case ilp::IlpStatus::kNodeLimit:
      ++mr.tiles_node_limit;
      mr.max_ilp_gap = std::max(mr.max_ilp_gap, tile.ilp_gap);
      break;
    default:
      // solve_tile_guarded converts abnormal exits into failure records;
      // a bare abnormal status can only come from a direct solve_tile
      // call. Count it as a failed tile without a structured record.
      ++mr.tiles_failed;
      break;
  }
}

/// Publish one solved method's aggregates into the global registry.
/// `tiles_solved` is the number of per-tile solves actually executed (in a
/// one-shot run: every instance; in an incremental re-solve: the dirty set).
inline void publish_method_metrics(const MethodResult& mr,
                                   std::size_t tiles_solved) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::metrics();
  const char* m = to_string(mr.method);
  auto name = [&](const char* base) {
    return obs::labeled(base, {{"method", m}});
  };
  reg.counter(name("pilfill.tiles_solved"))
      .add(static_cast<long long>(tiles_solved));
  reg.counter(name("pilfill.features_placed")).add(mr.placed);
  reg.counter(name("pilfill.shortfall")).add(mr.shortfall);
  reg.counter(name("pil.ilp.bb_nodes")).add(mr.bb_nodes);
  reg.counter(name("pil.ilp.lp_solves")).add(mr.lp_solves);
  reg.counter(name("pil.lp.simplex_iterations")).add(mr.simplex_iterations);
  reg.counter(name("pil.lp.dual_iterations")).add(mr.dual_iterations);
  reg.counter(name("pil.lp.warm_starts")).add(mr.warm_starts);
  reg.counter(name("pilfill.tiles_node_limit")).add(mr.tiles_node_limit);
  reg.counter(name("pilfill.tiles_degraded")).add(mr.tiles_degraded);
  reg.counter(name("pilfill.tiles_failed")).add(mr.tiles_failed);
  for (const TileFailure& f : mr.failures)
    reg.counter(obs::labeled("pilfill.tile_failures",
                             {{"method", m}, {"reason", to_string(f.reason)}}))
        .add(1);
  reg.gauge(name("pilfill.solve_seconds")).add(mr.solve_seconds);
  reg.gauge(name("pilfill.eval_seconds")).add(mr.eval_seconds);
}

/// Solve `todo` tiles with `method` on the shared worker pool. Per-tile RNG
/// streams depend only on (config.seed, method, tile id), so results are
/// deterministic regardless of the thread count and of which tiles are in
/// `todo`. The thread count is clamped to the work size; with more than one
/// worker each owns a private ColumnCapLut (the cache is not thread-safe),
/// while the single-thread path reuses the caller's shared LUT via `ctx`.
///
/// Fault containment: every tile runs through solve_tile_guarded, and the
/// worker body adds a belt-and-braces catch so no exception can escape a
/// pool thread (which would std::terminate the process). With
/// `config.fail_fast` set, the first tile failure cancels the remaining
/// work and the pool rethrows it as pil::Error after joining --
/// deterministically reporting the lowest-indexed failed tile, regardless
/// of which worker hit a failure first.
///
/// `warm_roots`, when non-null, carries one optional root-basis hint per
/// `todo` entry (FillSession's per-tile cache); entry i is forwarded to
/// tile i's ILP as IlpOptions::warm_basis. Hints are pure execution
/// strategy -- a stale or mismatched basis is rejected inside the LP layer
/// and never changes results.
inline std::vector<TileSolveResult> solve_instances_parallel(
    Method method, const std::vector<const TileInstance*>& todo,
    const SolverContext& ctx, const cap::CouplingModel& model,
    const FlowConfig& config,
    const std::vector<std::shared_ptr<const lp::Basis>>* warm_roots =
        nullptr) {
  // Per-tile RNG streams keep Normal's placement identical no matter how
  // tiles are distributed over threads.
  const std::uint64_t method_salt =
      config.seed ^ (0x9e37u + static_cast<unsigned>(method) * 0x85ebu);
  std::vector<TileSolveResult> solved(todo.size());
  const int threads = std::clamp(
      config.threads, 1, std::max(1, static_cast<int>(todo.size())));
  std::atomic<bool> abort{false};
  // Workers inherit the caller's (session, flow) attribution -- fresh
  // threads start with an empty thread-local scope.
  const obs::JournalCorrelation flow_corr = obs::journal_correlation();
  auto solve_range = [&](SolverContext local_ctx, std::atomic<size_t>& next,
                         int worker) {
    // Hot-path handles resolved once per worker: recording a tile's solve
    // time is then one lock-free histogram update. With no sinks attached
    // the loop body is exactly the uninstrumented solve.
    obs::Histogram* hist = nullptr;
    if (obs::metrics_enabled())
      hist = &obs::metrics().histogram(
          obs::labeled("pilfill.tile_solve_seconds",
                       {{"method", to_string(method)},
                        {"thread", std::to_string(worker)}}));
    const bool tracing = obs::trace_session() != nullptr;
    const bool journaling = obs::journal_armed();
    for (std::size_t i = next.fetch_add(1); i < todo.size();
         i = next.fetch_add(1)) {
      if (config.fail_fast && abort.load(std::memory_order_relaxed)) break;
      Rng rng(method_salt ^
              (static_cast<std::uint64_t>(todo[i]->tile_flat) *
               0x9E3779B97F4A7C15ull));
      local_ctx.ilp.warm_basis =
          warm_roots != nullptr ? (*warm_roots)[i] : nullptr;
      obs::JournalCorrelation tile_corr = flow_corr;
      tile_corr.tile = todo[i]->tile_flat;
      obs::JournalScope journal_scope(tile_corr);
      try {
        if (hist || tracing || journaling) {
          obs::TraceSpan span(
              "tile_solve",
              tracing ? "{\"tile\":" + std::to_string(todo[i]->tile_flat) +
                            ",\"method\":\"" + to_string(method) + "\"}"
                      : std::string());
          if (journaling)
            obs::journal_record(
                obs::JournalEventKind::kTileBegin,
                static_cast<std::uint16_t>(method), 0,
                static_cast<std::uint64_t>(todo[i]->required));
          Stopwatch tile_watch;
          solved[i] = solve_tile_guarded(method, *todo[i], local_ctx, rng);
          const double tile_seconds = tile_watch.seconds();
          if (hist) hist->observe(tile_seconds);
          if (journaling)
            obs::journal_record(
                obs::JournalEventKind::kTileEnd,
                static_cast<std::uint16_t>(method), 0,
                static_cast<std::uint64_t>(solved[i].placed), tile_seconds);
        } else {
          solved[i] = solve_tile_guarded(method, *todo[i], local_ctx, rng);
        }
      } catch (const std::exception& e) {
        // solve_tile_guarded is documented not to throw; this is the last
        // line of defense keeping a pool thread from std::terminate.
        TileSolveResult& r = solved[i];
        r.counts.assign(todo[i]->cols.size(), 0);
        r.placed = 0;
        r.shortfall = todo[i]->required;
        TileFailure f;
        f.tile = todo[i]->tile_flat;
        f.method = method;
        f.served_by = method;
        f.reason = FailureReason::kException;
        f.detail = e.what();
        r.failure = f;
      }
      if (config.fail_fast && solved[i].failure.has_value())
        abort.store(true, std::memory_order_relaxed);
    }
  };
  if (threads <= 1) {
    std::atomic<size_t> next{0};
    solve_range(ctx, next, 0);
  } else {
    // The LUT cache is not thread-safe; each worker owns one.
    std::atomic<size_t> next{0};
    std::vector<cap::ColumnCapLut> luts(
        threads, cap::ColumnCapLut(model, config.rules.feature_um));
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int w = 0; w < threads; ++w) {
      SolverContext local_ctx = ctx;
      local_ctx.lut = &luts[w];
      pool.emplace_back([&solve_range, local_ctx, &next, w] {
        obs::journal_set_thread_name("worker-" + std::to_string(w));
        solve_range(local_ctx, next, w);
      });
    }
    for (auto& t : pool) t.join();
  }
  if (config.fail_fast) {
    for (const TileSolveResult& r : solved) {
      if (!r.failure.has_value()) continue;
      const TileFailure& f = *r.failure;
      throw Error(std::string("fail-fast: tile ") + std::to_string(f.tile) +
                  " (" + to_string(f.method) + ") failed with " +
                  to_string(f.reason) +
                  (f.detail.empty() ? std::string() : " -- " + f.detail));
    }
  }
  return solved;
}

}  // namespace pil::pilfill::flow_detail
