#include "pil/pilfill/instance.hpp"

namespace pil::pilfill {

double piece_res_at_x(const rctree::WirePiece& piece, double x) {
  // Horizontal pieces: distance along the line from the upstream endpoint.
  return piece.upstream_res + piece.res_per_um * std::fabs(x - piece.up.x);
}

TileInstance build_tile_instance(int tile_flat, int required,
                                 const fill::SlackColumns& slack,
                                 const std::vector<rctree::WirePiece>& pieces,
                                 const std::vector<double>& net_criticality) {
  auto crit = [&](layout::NetId n) {
    if (n < 0 || static_cast<std::size_t>(n) >= net_criticality.size())
      return 1.0;
    PIL_REQUIRE(net_criticality[n] >= 0, "negative net criticality");
    return net_criticality[n];
  };
  TileInstance inst;
  inst.tile_flat = tile_flat;
  inst.required = required;
  const auto& parts = slack.tile_parts(tile_flat);
  inst.cols.reserve(parts.size());
  for (const auto& part : parts) {
    const fill::SlackColumn& col = slack.columns()[part.column];
    InstanceColumn ic;
    ic.column = part.column;
    ic.first_site = part.first_site;
    ic.num_sites = part.num_sites;
    ic.x = col.x_center;
    ic.d = col.gap_um;
    ic.two_sided = col.two_sided();
    if (ic.two_sided) {
      const rctree::WirePiece& below = pieces[col.below_piece];
      const rctree::WirePiece& above = pieces[col.above_piece];
      ic.below_net = below.net;
      ic.above_net = above.net;
      const double rb = below.res_at(slack.column_cross_point(col, below));
      const double ra = above.res_at(slack.column_cross_point(col, above));
      ic.res_nonweighted = rb + ra;
      ic.res_weighted = crit(below.net) * below.downstream_sinks * rb +
                        crit(above.net) * above.downstream_sinks * ra;
      // The exact-delay factor is physical: criticality never scales it.
      ic.res_exact = below.downstream_sinks * rb + above.downstream_sinks * ra +
                     below.offpath_res_sum + above.offpath_res_sum;
    }
    inst.cols.push_back(ic);
  }
  return inst;
}

}  // namespace pil::pilfill
