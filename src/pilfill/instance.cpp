#include "pil/pilfill/instance.hpp"

#include "pil/simd/simd.hpp"

namespace pil::pilfill {

double piece_res_at_x(const rctree::WirePiece& piece, double x) {
  // Horizontal pieces: distance along the line from the upstream endpoint.
  return piece.upstream_res + piece.res_per_um * std::fabs(x - piece.up.x);
}

void PrepColumns::clear() {
  idx.clear();
  base_b.clear(); slope_b.clear(); uxb.clear(); uyb.clear();
  qxb.clear(); qyb.clear();
  base_a.clear(); slope_a.clear(); uxa.clear(); uya.clear();
  qxa.clear(); qya.clear();
  wb.clear(); wa.clear();
  sb.clear(); sa.clear();
  ob.clear(); oa.clear();
}

void PrepColumns::resize_outputs() {
  rb.resize(idx.size());
  ra.resize(idx.size());
  res_nw.resize(idx.size());
  res_w.resize(idx.size());
  res_ex.resize(idx.size());
}

TileInstance build_tile_instance(int tile_flat, int required,
                                 const fill::SlackColumns& slack,
                                 const std::vector<rctree::WirePiece>& pieces,
                                 const std::vector<double>& net_criticality,
                                 PrepColumns* scratch) {
  auto crit = [&](layout::NetId n) {
    if (n < 0 || static_cast<std::size_t>(n) >= net_criticality.size())
      return 1.0;
    PIL_REQUIRE(net_criticality[n] >= 0, "negative net criticality");
    return net_criticality[n];
  };
  TileInstance inst;
  inst.tile_flat = tile_flat;
  inst.required = required;
  const auto& parts = slack.tile_parts(tile_flat);
  inst.cols.reserve(parts.size());

  // Gather pass: fixed per-column fields into the instance, the two-sided
  // columns' entry-resistance and weighting inputs into SoA columns.
  PrepColumns local;
  PrepColumns& p = scratch != nullptr ? *scratch : local;
  p.clear();
  for (const auto& part : parts) {
    const fill::SlackColumn& col = slack.columns()[part.column];
    InstanceColumn ic;
    ic.column = part.column;
    ic.first_site = part.first_site;
    ic.num_sites = part.num_sites;
    ic.x = col.x_center;
    ic.d = col.gap_um;
    ic.two_sided = col.two_sided();
    if (ic.two_sided) {
      const rctree::WirePiece& below = pieces[col.below_piece];
      const rctree::WirePiece& above = pieces[col.above_piece];
      ic.below_net = below.net;
      ic.above_net = above.net;
      const geom::Point qb = slack.column_cross_point(col, below);
      const geom::Point qa = slack.column_cross_point(col, above);
      p.idx.push_back(static_cast<int>(inst.cols.size()));
      p.base_b.push_back(below.upstream_res);
      p.slope_b.push_back(below.res_per_um);
      p.uxb.push_back(below.up.x);
      p.uyb.push_back(below.up.y);
      p.qxb.push_back(qb.x);
      p.qyb.push_back(qb.y);
      p.base_a.push_back(above.upstream_res);
      p.slope_a.push_back(above.res_per_um);
      p.uxa.push_back(above.up.x);
      p.uya.push_back(above.up.y);
      p.qxa.push_back(qa.x);
      p.qya.push_back(qa.y);
      p.wb.push_back(crit(below.net) * below.downstream_sinks);
      p.wa.push_back(crit(above.net) * above.downstream_sinks);
      p.sb.push_back(static_cast<double>(below.downstream_sinks));
      p.sa.push_back(static_cast<double>(above.downstream_sinks));
      p.ob.push_back(below.offpath_res_sum);
      p.oa.push_back(above.offpath_res_sum);
    }
    inst.cols.push_back(ic);
  }

  // Kernel pass: entry resistances rb/ra = WirePiece::res_at(cross point),
  // then the three resistance factors, each with the operation order of
  // the corresponding scalar expression (Eq. 13 / Eq. 21 / exact delay).
  const std::size_t n = p.size();
  if (n > 0) {
    const simd::Kernels& K = simd::kernels();
    p.resize_outputs();
    K.entry_res(p.base_b.data(), p.slope_b.data(), p.uxb.data(), p.uyb.data(),
                p.qxb.data(), p.qyb.data(), n, p.rb.data());
    K.entry_res(p.base_a.data(), p.slope_a.data(), p.uxa.data(), p.uya.data(),
                p.qxa.data(), p.qya.data(), n, p.ra.data());
    K.add2(p.rb.data(), p.ra.data(), n, p.res_nw.data());
    K.weighted_pair(p.wb.data(), p.rb.data(), p.wa.data(), p.ra.data(), n,
                    p.res_w.data());
    // The exact-delay factor is physical: criticality never scales it.
    K.exact_pair(p.sb.data(), p.rb.data(), p.sa.data(), p.ra.data(),
                 p.ob.data(), p.oa.data(), n, p.res_ex.data());
    for (std::size_t j = 0; j < n; ++j) {
      InstanceColumn& ic = inst.cols[static_cast<std::size_t>(p.idx[j])];
      ic.res_nonweighted = p.res_nw[j];
      ic.res_weighted = p.res_w[j];
      ic.res_exact = p.res_ex[j];
    }
  }
  return inst;
}

}  // namespace pil::pilfill
