#include "pil/pilfill/mvdc.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "pil/util/log.hpp"

namespace pil::pilfill {

namespace {

using grid::Dissection;
using grid::TileIndex;

template <typename F>
void for_covering_windows(const Dissection& dis, int ix, int iy, F&& fn) {
  const int wx_lo = std::max(0, ix - dis.r() + 1);
  const int wx_hi = std::min(dis.windows_x() - 1, ix);
  const int wy_lo = std::max(0, iy - dis.r() + 1);
  const int wy_hi = std::min(dis.windows_y() - 1, iy);
  for (int wy = wy_lo; wy <= wy_hi; ++wy)
    for (int wx = wx_lo; wx <= wx_hi; ++wx) fn(wx, wy);
}

/// Timing-aware site pool of one tile: columns with counts and a heap of
/// next-feature delay marginals (exact LUT model, so marginals are
/// nondecreasing per column and the heap peek is the tile's true cheapest).
struct TilePool {
  TileInstance inst;
  std::vector<int> counts;
  // (marginal delay ps, column); one live entry per column.
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>, std::greater<>>
      heap;

  double marginal_ps(const SolverContext& ctx, int k, int n) const {
    const InstanceColumn& c = inst.cols[k];
    if (!c.two_sided) return 0.0;
    const auto& lut = ctx.lut->table(c.d, c.num_sites);
    const double rf = ctx.objective == Objective::kWeighted
                          ? c.res_weighted
                          : c.res_nonweighted;
    return (lut[n] - lut[n - 1]) * ctx.switch_factor * rf * 1e-3;
  }

  void init(const SolverContext& ctx) {
    counts.assign(inst.cols.size(), 0);
    for (std::size_t k = 0; k < inst.cols.size(); ++k)
      if (inst.cols[k].num_sites > 0)
        heap.emplace(marginal_ps(ctx, static_cast<int>(k), 1),
                     static_cast<int>(k));
  }

  bool has_site() const { return !heap.empty(); }
  double cheapest_ps() const { return heap.top().first; }

  /// Take the cheapest site; returns its delay cost (ps).
  double take(const SolverContext& ctx) {
    const auto [cost, k] = heap.top();
    heap.pop();
    counts[k] += 1;
    if (counts[k] < inst.cols[k].num_sites)
      heap.emplace(marginal_ps(ctx, k, counts[k] + 1), k);
    return cost;
  }
};

}  // namespace

MvdcResult run_mvdc_fill(const layout::Layout& layout, const FlowConfig& flow,
                         const MvdcConfig& mvdc) {
  flow.rules.validate();
  PIL_REQUIRE(flow.style == cap::FillStyle::kFloating,
              "MVDC allocation requires the convex floating model");
  PIL_REQUIRE(mvdc.delay_budget_ps >= 0, "negative delay budget");
  const layout::Layer& layer = layout.layer(flow.layer);

  const Dissection dis(layout.die(), flow.window_um, flow.r);
  grid::DensityMap wires(dis);
  wires.add_layer_wires(layout, flow.layer);

  const auto trees = rctree::build_all_trees(layout);
  const auto pieces = fill::flatten_pieces(trees);
  const fill::SlackColumns slack = fill::extract_slack_columns(
      layout, dis, pieces, flow.layer, flow.rules, fill::SlackMode::kIII);

  const cap::CouplingModel model(layer.eps_r, layer.thickness_um);
  cap::ColumnCapLut lut(model, flow.rules.feature_um);
  SolverContext ctx;
  ctx.model = &model;
  ctx.lut = &lut;
  ctx.rules = flow.rules;
  ctx.objective = flow.objective;
  ctx.switch_factor = flow.switch_factor;

  MvdcResult result;
  result.density_before = wires.stats();
  const double fa = flow.rules.feature_area();
  const double win_area = dis.window_um() * dis.window_um();
  result.lower_target_used = mvdc.lower_target >= 0
                                 ? mvdc.lower_target
                                 : result.density_before.max_density;
  result.upper_bound_used =
      mvdc.upper_bound >= 0
          ? mvdc.upper_bound
          : std::max(result.lower_target_used,
                     result.density_before.max_density) +
                2 * fa / win_area;
  PIL_REQUIRE(result.upper_bound_used >= result.lower_target_used,
              "upper bound below lower target");

  // Tile pools (only tiles with any slack capacity).
  std::vector<int> pool_of_tile(dis.num_tiles(), -1);
  std::vector<TilePool> pools;
  for (int t = 0; t < dis.num_tiles(); ++t) {
    if (slack.tile_parts(t).empty()) continue;
    TilePool pool;
    pool.inst = build_tile_instance(t, 0, slack, pieces);
    pool.init(ctx);
    pool_of_tile[t] = static_cast<int>(pools.size());
    pools.push_back(std::move(pool));
  }

  // Window density state, as in the Monte-Carlo targeter.
  const int nwx = dis.windows_x();
  const int nwy = dis.windows_y();
  std::vector<double> warea(static_cast<std::size_t>(nwx) * nwy);
  for (int wy = 0; wy < nwy; ++wy)
    for (int wx = 0; wx < nwx; ++wx)
      warea[static_cast<std::size_t>(wy) * nwx + wx] = wires.window_area(wx, wy);
  std::vector<bool> stuck(warea.size(), false);
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> windows;
  for (std::size_t w = 0; w < warea.size(); ++w)
    windows.emplace(warea[w] / win_area, static_cast<int>(w));

  while (!windows.empty()) {
    const auto [dens, w] = windows.top();
    windows.pop();
    if (stuck[w]) continue;
    const double current = warea[w] / win_area;
    if (current > dens + 1e-15) {
      windows.emplace(current, w);
      continue;
    }
    if (current >= result.lower_target_used - 1e-12) break;

    // Cheapest insertable site among the window's tiles (respecting U on
    // every covering window).
    const int wx = w % nwx;
    const int wy = w / nwx;
    int best_pool = -1;
    double best_cost = 0;
    for (int iy = wy; iy < wy + dis.r(); ++iy) {
      for (int ix = wx; ix < wx + dis.r(); ++ix) {
        if (ix >= dis.tiles_x() || iy >= dis.tiles_y()) continue;
        const int pi = pool_of_tile[dis.tile_flat(TileIndex{ix, iy})];
        if (pi < 0 || !pools[pi].has_site()) continue;
        bool ok = true;
        for_covering_windows(dis, ix, iy, [&](int cwx, int cwy) {
          const std::size_t cw = static_cast<std::size_t>(cwy) * nwx + cwx;
          if (warea[cw] + fa > result.upper_bound_used * win_area + 1e-12)
            ok = false;
        });
        if (!ok) continue;
        const double cost = pools[pi].cheapest_ps();
        if (best_pool < 0 || cost < best_cost) {
          best_pool = pi;
          best_cost = cost;
        }
      }
    }
    if (best_pool < 0) {
      stuck[w] = true;  // nothing can raise this window any further
      continue;
    }
    // Raising the minimum *requires* filling this window; if even the
    // cheapest way busts the budget, MVDC is done.
    if (result.delay_spent_ps + best_cost > mvdc.delay_budget_ps + 1e-15) {
      result.budget_exhausted = true;
      break;
    }
    result.delay_spent_ps += pools[best_pool].take(ctx);
    ++result.placed;
    const TileIndex t = dis.tile_unflat(pools[best_pool].inst.tile_flat);
    for_covering_windows(dis, t.ix, t.iy, [&](int cwx, int cwy) {
      warea[static_cast<std::size_t>(cwy) * nwx + cwx] += fa;
    });
    windows.emplace(warea[w] / win_area, w);
  }

  // Materialize the placement and score it exactly.
  for (const TilePool& pool : pools) {
    for (std::size_t k = 0; k < pool.inst.cols.size(); ++k) {
      const InstanceColumn& ic = pool.inst.cols[k];
      const fill::SlackColumn& col = slack.columns()[ic.column];
      for (int i = 0; i < pool.counts[k]; ++i)
        result.features.push_back(
            slack.site_rect(col, ic.first_site + i, flow.rules));
    }
  }
  EvaluatorOptions eval_options;
  eval_options.switch_factor = flow.switch_factor;
  const DelayImpactEvaluator evaluator(slack, pieces, model, flow.rules,
                                       eval_options);
  result.impact = evaluator.evaluate_rects(result.features);

  grid::DensityMap after = wires;
  for (const auto& r : result.features) after.add_rect(r);
  result.density_after = after.stats();
  PIL_INFO("MVDC: placed " << result.placed << ", delay spent "
                           << result.delay_spent_ps << " ps, min density "
                           << result.density_before.min_density << " -> "
                           << result.density_after.min_density);
  return result;
}

}  // namespace pil::pilfill
