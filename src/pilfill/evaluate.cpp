#include "pil/pilfill/evaluate.hpp"

#include <algorithm>
#include <cmath>

namespace pil::pilfill {

DelayImpactEvaluator::DelayImpactEvaluator(
    const fill::SlackColumns& global,
    const std::vector<rctree::WirePiece>& pieces,
    const cap::CouplingModel& model, const fill::FillRules& rules,
    const EvaluatorOptions& options)
    : global_(&global),
      pieces_(&pieces),
      model_(model),
      rules_(rules),
      options_(options) {
  PIL_REQUIRE(options.switch_factor > 0, "switch factor must be positive");
  int max_colindex = -1;
  for (const auto& col : global.columns())
    max_colindex = std::max(max_colindex, col.col_index);
  spans_by_colindex_.resize(max_colindex + 1);
  for (std::size_t i = 0; i < global.columns().size(); ++i) {
    const auto& col = global.columns()[i];
    spans_by_colindex_[col.col_index].emplace_back(col.span_lo,
                                                   static_cast<int>(i));
  }
  for (auto& v : spans_by_colindex_) std::sort(v.begin(), v.end());
}

int DelayImpactEvaluator::find_column(const geom::Rect& feature_real) const {
  if (spans_by_colindex_.empty()) return -1;
  // Column coordinates live in the scan frame (transposed for vertical
  // layers); move the query there first.
  const geom::Rect feature =
      global_->transposed()
          ? geom::Rect{feature_real.ylo, feature_real.xlo, feature_real.yhi,
                       feature_real.xhi}
          : feature_real;
  // Recover the site-column index from the feature's x center. All shipped
  // placements use the shared global x grid, so the nearest column is exact.
  const auto& cols = global_->columns();
  const double cx = (feature.xlo + feature.xhi) / 2;
  // Use any column to recover the grid: columns are at origin + c*pitch.
  int guess = -1;
  for (const auto& spans : spans_by_colindex_) {
    if (spans.empty()) continue;
    const auto& c0 = cols[spans.front().second];
    const double rel = (cx - c0.x_center) / rules_.pitch();
    guess = c0.col_index + static_cast<int>(std::lround(rel));
    break;
  }
  if (guess < 0 || guess >= static_cast<int>(spans_by_colindex_.size()))
    return -1;
  const auto& spans = spans_by_colindex_[guess];
  const double cy = (feature.ylo + feature.yhi) / 2;
  // Last span starting at or below cy.
  auto it = std::upper_bound(
      spans.begin(), spans.end(), std::make_pair(cy + geom::kEps, 1 << 30));
  if (it == spans.begin()) return -1;
  --it;
  const auto& col = cols[it->second];
  if (cy > col.span_hi + geom::kEps) return -1;
  if (std::fabs(col.x_center - cx) > rules_.pitch() / 2) return -1;
  return it->second;
}

DelayImpact DelayImpactEvaluator::evaluate_rects(
    const std::vector<geom::Rect>& features) const {
  std::vector<int> counts(global_->columns().size(), 0);
  long long unmapped = 0;
  for (const auto& f : features) {
    const int c = find_column(f);
    if (c < 0) {
      ++unmapped;
      continue;
    }
    counts[c] += 1;
  }
  DelayImpact impact = evaluate_counts(counts);
  impact.unmapped = unmapped;
  impact.features = static_cast<long long>(features.size());
  return impact;
}

std::vector<double> DelayImpactEvaluator::per_net_coupling_ff(
    const std::vector<geom::Rect>& features, int num_nets) const {
  std::vector<int> counts(global_->columns().size(), 0);
  for (const auto& f : features) {
    const int c = find_column(f);
    if (c >= 0) counts[c] += 1;
  }
  std::vector<double> used(num_nets, 0.0);
  const auto& cols = global_->columns();
  for (std::size_t i = 0; i < cols.size(); ++i) {
    const int m = counts[i];
    if (m == 0 || !cols[i].two_sided()) continue;
    const double dcap =
        options_.switch_factor *
        (options_.style == cap::FillStyle::kFloating
             ? model_.column_delta_cap_ff(m, rules_.feature_um,
                                          cols[i].gap_um)
             : model_.grounded_column_delta_line_cap_ff(
                   m, rules_.feature_um, rules_.buffer_um, cols[i].gap_um));
    const layout::NetId below = (*pieces_)[cols[i].below_piece].net;
    const layout::NetId above = (*pieces_)[cols[i].above_piece].net;
    PIL_REQUIRE(below >= 0 && below < num_nets && above >= 0 &&
                    above < num_nets,
                "piece net id out of range");
    used[below] += dcap;
    used[above] += dcap;
  }
  return used;
}

DelayImpact DelayImpactEvaluator::evaluate_counts(
    const std::vector<int>& counts) const {
  PIL_REQUIRE(counts.size() == global_->columns().size(),
              "per-column count vector size mismatch");
  DelayImpact impact;
  const auto& cols = global_->columns();
  for (std::size_t i = 0; i < cols.size(); ++i) {
    const int m = counts[i];
    if (m == 0) continue;
    const auto& col = cols[i];
    PIL_REQUIRE(m >= 0 && m <= col.capacity, "column count out of range");
    impact.features += m;
    if (!col.two_sided()) continue;  // no second plate: no coupling change
    const double dcap =
        options_.switch_factor *
        (options_.style == cap::FillStyle::kFloating
             ? model_.column_delta_cap_ff(m, rules_.feature_um, col.gap_um)
             : model_.grounded_column_delta_line_cap_ff(
                   m, rules_.feature_um, rules_.buffer_um, col.gap_um));
    const rctree::WirePiece& below = (*pieces_)[col.below_piece];
    const rctree::WirePiece& above = (*pieces_)[col.above_piece];
    const double rb = piece_res_at_x(below, col.x_center);
    const double ra = piece_res_at_x(above, col.x_center);
    // ohm * fF = 1e-15 s = 1e-3 ps.
    impact.delay_ps += dcap * (rb + ra) * 1e-3;
    impact.weighted_delay_ps +=
        dcap *
        (below.downstream_sinks * rb + above.downstream_sinks * ra) * 1e-3;
    impact.exact_sink_delay_ps +=
        dcap *
        (below.downstream_sinks * rb + below.offpath_res_sum +
         above.downstream_sinks * ra + above.offpath_res_sum) *
        1e-3;
  }
  return impact;
}

}  // namespace pil::pilfill
