#include "pil/sta/sta.hpp"

#include <algorithm>

#include "pil/util/log.hpp"

namespace pil::sta {

TimingReport analyze_timing(const std::vector<rctree::RcTree>& trees,
                            const TimingConstraints& constraints) {
  TimingReport report;
  report.nets.reserve(trees.size());
  bool first = true;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    const rctree::RcTree& tree = trees[i];
    PIL_REQUIRE(tree.net() == static_cast<layout::NetId>(i),
                "trees must be in NetId order");
    NetTiming nt;
    nt.net = static_cast<layout::NetId>(i);
    nt.arrival_ps = i < constraints.net_arrival_ps.size()
                        ? constraints.net_arrival_ps[i]
                        : 0.0;
    for (int s = 0; s < tree.num_sinks(); ++s)
      nt.worst_sink_delay_ps =
          std::max(nt.worst_sink_delay_ps, tree.sink_delay_ps(s));
    nt.worst_arrival_ps = nt.arrival_ps + nt.worst_sink_delay_ps;
    nt.required_ps = i < constraints.net_required_ps.size()
                         ? constraints.net_required_ps[i]
                         : constraints.default_required_ps;
    nt.slack_ps = nt.required_ps - nt.worst_arrival_ps;
    if (nt.slack_ps < 0) {
      report.total_negative_slack_ps += nt.slack_ps;
      ++report.failing_nets;
    }
    if (first || nt.slack_ps < report.worst_slack_ps) {
      report.worst_slack_ps = nt.slack_ps;
      first = false;
    }
    report.nets.push_back(nt);
  }
  PIL_INFO("STA: " << report.nets.size() << " nets, WNS "
                   << report.worst_slack_ps << " ps, TNS "
                   << report.total_negative_slack_ps << " ps ("
                   << report.failing_nets << " failing)");
  return report;
}

TimingReport analyze_timing(const layout::Layout& layout,
                            const TimingConstraints& constraints) {
  return analyze_timing(rctree::build_all_trees(layout), constraints);
}

std::vector<double> criticality_from_slack(const TimingReport& report,
                                           double slack_ceiling_ps,
                                           double max_weight) {
  PIL_REQUIRE(slack_ceiling_ps > 0, "slack ceiling must be positive");
  PIL_REQUIRE(max_weight >= 1, "max weight must be at least 1");
  std::vector<double> weights(report.nets.size(), 1.0);
  for (std::size_t i = 0; i < report.nets.size(); ++i) {
    const double slack = report.nets[i].slack_ps;
    if (slack <= 0) {
      weights[i] = max_weight;
    } else if (slack < slack_ceiling_ps) {
      weights[i] = 1.0 + (max_weight - 1.0) * (1.0 - slack / slack_ceiling_ps);
    }
  }
  return weights;
}

std::vector<double> delay_allowance_from_slack(const TimingReport& report,
                                               double fraction) {
  PIL_REQUIRE(fraction >= 0 && fraction <= 1, "fraction must be in [0,1]");
  std::vector<double> allowance(report.nets.size(), 0.0);
  for (std::size_t i = 0; i < report.nets.size(); ++i)
    allowance[i] = std::max(0.0, report.nets[i].slack_ps) * fraction;
  return allowance;
}

}  // namespace pil::sta
