#include "pil/util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "pil/util/error.hpp"

namespace pil {

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split_on(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

double parse_double(std::string_view s, std::string_view context) {
  s = trim(s);
  double v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    std::ostringstream os;
    os << "malformed number '" << s << "'";
    if (!context.empty()) os << " in " << context;
    throw Error(os.str());
  }
  return v;
}

long long parse_int(std::string_view s, std::string_view context) {
  s = trim(s);
  long long v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    std::ostringstream os;
    os << "malformed integer '" << s << "'";
    if (!context.empty()) os << " in " << context;
    throw Error(os.str());
  }
  return v;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string format_double_exact(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  // %.17g round-trips every double; trim to %g when it is exact already.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  if (std::strtod(buf, nullptr) == v) {
    char shorter[40];
    std::snprintf(shorter, sizeof shorter, "%g", v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

}  // namespace pil
