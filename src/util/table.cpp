#include "pil/util/table.hpp"

#include <algorithm>

#include "pil/util/error.hpp"

namespace pil {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PIL_REQUIRE(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  PIL_REQUIRE(cells.size() == headers_.size(),
              "Table row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };

  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const bool quote = row[c].find(',') != std::string::npos;
      if (quote) os << '"';
      os << row[c];
      if (quote) os << '"';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace pil
