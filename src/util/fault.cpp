#include "pil/util/fault.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "pil/util/strings.hpp"

namespace pil::util {
namespace {

// Active plan. Double-buffered into static storage so maybe_fault() never
// dereferences a plan that is being replaced mid-read: set_fault_plan
// writes the inactive slot, then swaps the pointer. (Arming while solves
// are in flight is documented as unsupported; the buffer just keeps the
// race benign.)
FaultPlan g_plans[2];
std::atomic<const FaultPlan*> g_active{nullptr};
int g_next_slot = 0;

// splitmix64: the same finalizer used by the Rng seeding path. Maps
// (seed, site, key) to a uniform 64-bit value without any shared state.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

FaultSite parse_site(std::string_view token, std::string_view spec) {
  for (int i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    if (token == to_string(site)) return site;
  }
  throw Error("fault spec '" + std::string(spec) + "': unknown site '" +
              std::string(token) +
              "' (expected tile_solve, lp_pivot, bb_node, session_edit, "
              "accept_drop, frame_truncate, frame_delay, conn_reset, or "
              "worker_throw)");
}

FaultAction parse_action(std::string_view token, std::string_view spec) {
  if (token == "throw") return FaultAction::kThrow;
  if (token == "delay") return FaultAction::kDelay;
  throw Error("fault spec '" + std::string(spec) + "': unknown action '" +
              std::string(token) + "' (expected throw or delay)");
}

}  // namespace

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kTileSolve:
      return "tile_solve";
    case FaultSite::kLpPivot:
      return "lp_pivot";
    case FaultSite::kBbNode:
      return "bb_node";
    case FaultSite::kSessionEdit:
      return "session_edit";
    case FaultSite::kAcceptDrop:
      return "accept_drop";
    case FaultSite::kFrameTruncate:
      return "frame_truncate";
    case FaultSite::kFrameDelay:
      return "frame_delay";
    case FaultSite::kConnReset:
      return "conn_reset";
    case FaultSite::kWorkerThrow:
      return "worker_throw";
  }
  return "unknown";
}

const char* to_string(FaultAction action) {
  switch (action) {
    case FaultAction::kThrow:
      return "throw";
    case FaultAction::kDelay:
      return "delay";
  }
  return "unknown";
}

InjectedFault::InjectedFault(FaultSite site, std::uint64_t key)
    : Error([&] {
        std::ostringstream os;
        os << "injected fault at site " << to_string(site) << " (key " << key
           << ")";
        return os.str();
      }()),
      site_(site),
      key_(key) {}

FaultPlan FaultPlan::parse(std::string_view spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed_ = seed;
  const std::string_view trimmed = trim(spec);
  if (trimmed.empty()) return plan;
  for (const std::string& clause_raw : split_on(trimmed, ',')) {
    const std::string_view clause = trim(clause_raw);
    if (clause.empty()) {
      throw Error("fault spec '" + std::string(spec) + "': empty clause");
    }
    const std::vector<std::string> parts = split_on(clause, ':');
    if (parts.size() < 3 || parts.size() > 4) {
      throw Error("fault spec '" + std::string(spec) + "': clause '" +
                  std::string(clause) +
                  "' must be site:action:probability[:delay_ms]");
    }
    const FaultSite site = parse_site(trim(parts[0]), spec);
    const FaultAction action = parse_action(trim(parts[1]), spec);
    const double prob = parse_double(trim(parts[2]), "fault probability");
    PIL_REQUIRE(prob >= 0.0 && prob <= 1.0,
                "fault probability must be in [0, 1]");
    double delay_s = 0.0;
    if (parts.size() == 4) {
      const double delay_ms = parse_double(trim(parts[3]), "fault delay_ms");
      PIL_REQUIRE(delay_ms >= 0.0, "fault delay_ms must be >= 0");
      delay_s = delay_ms / 1000.0;
    }
    PIL_REQUIRE(action == FaultAction::kDelay || parts.size() == 3,
                "delay_ms only applies to the delay action");
    plan.arm(site, action, prob, delay_s);
  }
  return plan;
}

FaultPlan& FaultPlan::arm(FaultSite site, FaultAction action,
                          double probability, double delay_seconds) {
  PIL_REQUIRE(probability >= 0.0 && probability <= 1.0,
              "fault probability must be in [0, 1]");
  PIL_REQUIRE(delay_seconds >= 0.0, "fault delay must be >= 0");
  FaultRule& rule = rules_[static_cast<int>(site)];
  rule.armed = probability > 0.0;
  rule.action = action;
  rule.probability = probability;
  rule.delay_seconds = delay_seconds;
  return *this;
}

bool FaultPlan::empty() const {
  for (const FaultRule& rule : rules_) {
    if (rule.armed) return false;
  }
  return true;
}

bool FaultPlan::fires(FaultSite site, std::uint64_t key) const {
  const FaultRule& rule = rules_[static_cast<int>(site)];
  if (!rule.armed) return false;
  if (rule.probability >= 1.0) return true;
  const std::uint64_t h = mix64(
      mix64(seed_ ^ 0xA076'1D64'78BD'642Full) ^
      mix64(static_cast<std::uint64_t>(site) * 0x2545'F491'4F6C'DD1Dull) ^
      mix64(key));
  // Top 53 bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return u < rule.probability;
}

void set_fault_plan(const FaultPlan& plan) {
  if (plan.empty()) {
    clear_fault_plan();
    return;
  }
  g_plans[g_next_slot] = plan;
  g_active.store(&g_plans[g_next_slot], std::memory_order_release);
  g_next_slot ^= 1;
}

void clear_fault_plan() {
  g_active.store(nullptr, std::memory_order_release);
}

bool faults_armed() {
  return g_active.load(std::memory_order_relaxed) != nullptr;
}

void maybe_fault(FaultSite site, std::uint64_t key) {
  const FaultPlan* plan = g_active.load(std::memory_order_relaxed);
  if (plan == nullptr) return;
  if (!plan->fires(site, key)) return;
  const FaultRule& rule = plan->rule(site);
  if (rule.action == FaultAction::kThrow) throw InjectedFault(site, key);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(rule.delay_seconds));
}

bool arm_faults_from_env() {
  const char* spec = std::getenv("PIL_FAULT");
  if (spec == nullptr || *spec == '\0') return false;
  std::uint64_t seed = 0;
  if (const char* seed_env = std::getenv("PIL_FAULT_SEED")) {
    seed = static_cast<std::uint64_t>(
        parse_int(seed_env, "PIL_FAULT_SEED"));
  }
  set_fault_plan(FaultPlan::parse(spec, seed));
  return faults_armed();
}

}  // namespace pil::util
