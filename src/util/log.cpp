#include "pil/util/log.hpp"

#include <atomic>

namespace pil {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level));
}

namespace detail {

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log_line(LogLevel level, const std::string& msg) {
  std::ostream& os = (static_cast<int>(level) >= static_cast<int>(LogLevel::kWarn))
                         ? std::cerr
                         : std::clog;
  os << "[pil:" << level_name(level) << "] " << msg << '\n';
}

}  // namespace detail
}  // namespace pil
