#include "pil/util/log.hpp"

#include <atomic>
#include <cctype>
#include <mutex>

#include "pil/util/error.hpp"

namespace pil {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
// Serializes emission across the per-tile worker threads; the line is fully
// formatted before the lock so the critical section is one stream write.
std::mutex g_emit_mutex;
}  // namespace

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level));
}

LogLevel parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name)
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  throw Error("unknown log level '" + std::string(name) +
              "' (expected debug|info|warn|error|off)");
}

namespace detail {

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log_line(LogLevel level, const std::string& msg) {
  std::ostream& os = (static_cast<int>(level) >= static_cast<int>(LogLevel::kWarn))
                         ? std::cerr
                         : std::clog;
  std::string line;
  line.reserve(msg.size() + 16);
  line.append("[pil:").append(level_name(level)).append("] ").append(msg).push_back('\n');
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  os << line;
}

}  // namespace detail
}  // namespace pil
