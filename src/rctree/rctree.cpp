#include "pil/rctree/rctree.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <utility>

#include "pil/util/log.hpp"

namespace pil::rctree {

namespace {

using layout::Layout;
using layout::Net;
using layout::NetId;
using layout::Orientation;
using layout::WireSegment;

/// Integer key for snapping nearly-identical points to one electrical node.
struct NodeKey {
  long long x, y;
  friend bool operator<(const NodeKey& a, const NodeKey& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  }
};

NodeKey make_key(const geom::Point& p, double snap) {
  return NodeKey{static_cast<long long>(std::llround(p.x / snap)),
                 static_cast<long long>(std::llround(p.y / snap))};
}

/// True if q lies on the centerline of segment s (within tol).
bool point_on_centerline(const WireSegment& s, const geom::Point& q,
                         double tol) {
  if (s.orientation() == Orientation::kHorizontal) {
    return std::fabs(q.y - s.a.y) <= tol && q.x >= s.a.x - tol &&
           q.x <= s.b.x + tol;
  }
  return std::fabs(q.x - s.a.x) <= tol && q.y >= s.a.y - tol &&
         q.y <= s.b.y + tol;
}

struct AdjEdge {
  int to = -1;
  double res = 0.0;
  // Piece metadata (filled when the edge is traversed root-ward).
  layout::SegmentId segment = layout::kInvalidSegment;
  layout::LayerId layer = layout::kInvalidLayer;
  Orientation orientation = Orientation::kHorizontal;
  double width_um = 0.0;
  double res_per_um = 0.0;
  double length_um = 0.0;
};

}  // namespace

RcTree RcTree::build(const Layout& layout, NetId netid,
                     const RcTreeOptions& options) {
  const Net& net = layout.net(netid);
  const double tol = options.snap_tolerance_um;
  RcTree tree;
  tree.net_ = netid;

  // ---- 1. Collect split points per segment --------------------------------
  // A segment is split where another segment of the net ends on it, where a
  // segment crosses through a T endpoint, at the source, and at every sink.
  std::vector<const WireSegment*> segs;
  segs.reserve(net.segments.size());
  for (const auto sid : net.segments) segs.push_back(&layout.segment(sid));

  if (segs.empty()) {
    // Degenerate but legal: a net with no routing. All pins must coincide.
    for (const auto& s : net.sinks)
      PIL_REQUIRE(manhattan_distance(s.location, net.source) <= tol,
                  "net '" + net.name + "' has sinks but no routing");
    RcNode root;
    root.p = net.source;
    root.upstream_res = net.driver_res_ohm;
    root.subtree_sinks = static_cast<int>(net.sinks.size());
    for (const auto& s : net.sinks) root.cap_ff += s.load_cap_ff;
    root.elmore_ps = net.driver_res_ohm * root.cap_ff * 1e-3;  // ohm*fF -> ps
    tree.nodes_.push_back(root);
    for (std::size_t i = 0; i < net.sinks.size(); ++i)
      tree.sink_nodes_.push_back(0);
    return tree;
  }

  std::vector<std::vector<double>> splits(segs.size());
  auto add_split = [&](std::size_t si, const geom::Point& q) {
    const WireSegment& s = *segs[si];
    const double t = (s.orientation() == Orientation::kHorizontal) ? q.x : q.y;
    splits[si].push_back(t);
  };
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const WireSegment& s = *segs[i];
    add_split(i, s.a);
    add_split(i, s.b);
    if (point_on_centerline(s, net.source, tol)) add_split(i, net.source);
    for (const auto& sink : net.sinks)
      if (point_on_centerline(s, sink.location, tol))
        add_split(i, sink.location);
    for (std::size_t j = 0; j < segs.size(); ++j) {
      if (i == j) continue;
      const WireSegment& o = *segs[j];
      if (point_on_centerline(s, o.a, tol)) add_split(i, o.a);
      if (point_on_centerline(s, o.b, tol)) add_split(i, o.b);
    }
    auto& v = splits[i];
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end(),
                        [&](double a, double b) { return b - a <= tol; }),
            v.end());
  }

  // ---- 2. Build the node/adjacency graph ----------------------------------
  std::map<NodeKey, int> node_of;
  std::vector<geom::Point> points;
  auto intern = [&](const geom::Point& p) {
    const NodeKey k = make_key(p, tol);
    auto [it, inserted] = node_of.emplace(k, static_cast<int>(points.size()));
    if (inserted) points.push_back(p);
    return it->second;
  };

  std::vector<std::vector<AdjEdge>> adj;
  auto ensure_adj = [&] { adj.resize(points.size()); };

  for (std::size_t i = 0; i < segs.size(); ++i) {
    const WireSegment& s = *segs[i];
    const double rper = layout.layer(s.layer).res_per_um(s.width_um);
    const bool horiz = s.orientation() == Orientation::kHorizontal;
    for (std::size_t k = 0; k + 1 < splits[i].size(); ++k) {
      const double t0 = splits[i][k], t1 = splits[i][k + 1];
      if (t1 - t0 <= tol) continue;
      const geom::Point p0 = horiz ? geom::Point{t0, s.a.y}
                                   : geom::Point{s.a.x, t0};
      const geom::Point p1 = horiz ? geom::Point{t1, s.a.y}
                                   : geom::Point{s.a.x, t1};
      const int n0 = intern(p0);
      const int n1 = intern(p1);
      ensure_adj();
      AdjEdge e;
      e.res = rper * (t1 - t0);
      e.segment = s.id;
      e.layer = s.layer;
      e.orientation = horiz ? Orientation::kHorizontal : Orientation::kVertical;
      e.width_um = s.width_um;
      e.res_per_um = rper;
      e.length_um = t1 - t0;
      e.to = n1;
      adj[n0].push_back(e);
      e.to = n0;
      adj[n1].push_back(e);
    }
  }
  ensure_adj();

  const NodeKey source_key = make_key(net.source, tol);
  const auto src_it = node_of.find(source_key);
  PIL_REQUIRE(src_it != node_of.end(),
              "net '" + net.name + "': source is not on the routing");
  const int src_node = src_it->second;

  // ---- 3. BFS from the source: orientation, loop/connectivity checks ------
  const int n = static_cast<int>(points.size());
  std::vector<int> order;  // BFS order; position 0 is the source
  std::vector<int> parent(n, -2);  // -2 = unvisited, -1 = root
  std::vector<const AdjEdge*> parent_edge(n, nullptr);
  order.reserve(n);
  parent[src_node] = -1;
  std::deque<int> queue{src_node};
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (const AdjEdge& e : adj[u]) {
      if (parent[e.to] == -2) {
        parent[e.to] = u;
        parent_edge[e.to] = &e;
        queue.push_back(e.to);
      } else if (e.to != parent[u]) {
        throw Error("net '" + net.name + "': routing graph has a loop");
      }
    }
  }
  PIL_REQUIRE(static_cast<int>(order.size()) == n,
              "net '" + net.name + "': routing is disconnected");

  // ---- 4. Renumber so the root is node 0, in BFS order --------------------
  std::vector<int> newid(n, -1);
  for (int i = 0; i < n; ++i) newid[order[i]] = i;

  tree.nodes_.resize(n);
  tree.pieces_.reserve(n - 1);
  for (int i = 0; i < n; ++i) {
    const int old = order[i];
    RcNode& node = tree.nodes_[i];
    node.p = points[old];
    node.parent = (parent[old] >= 0) ? newid[parent[old]] : -1;
    node.res_to_parent = parent_edge[old] ? parent_edge[old]->res : 0.0;
  }

  // Pieces: one per non-root node (the edge to its parent).
  std::vector<int> piece_of_node(n, -1);  // piece whose down_node is i
  for (int i = 1; i < n; ++i) {
    const AdjEdge& e = *parent_edge[order[i]];
    WirePiece piece;
    piece.segment = e.segment;
    piece.net = netid;
    piece.layer = e.layer;
    piece.orientation = e.orientation;
    piece.up_node = tree.nodes_[i].parent;
    piece.down_node = i;
    piece.up = tree.nodes_[piece.up_node].p;
    piece.down = tree.nodes_[i].p;
    piece.width_um = e.width_um;
    piece.res_per_um = e.res_per_um;
    piece_of_node[i] = static_cast<int>(tree.pieces_.size());
    tree.pieces_.push_back(piece);
  }

  // ---- 4b. Via resistance where the tree changes layers -------------------
  if (options.via_res_ohm > 0) {
    for (int i = 1; i < n; ++i) {
      const int par = tree.nodes_[i].parent;
      if (par == 0) continue;  // the driver pin is not a via
      const WirePiece& mine = tree.pieces_[piece_of_node[i]];
      const WirePiece& parents = tree.pieces_[piece_of_node[par]];
      if (mine.layer != parents.layer)
        tree.nodes_[i].res_to_parent += options.via_res_ohm;
    }
  }

  // ---- 5. Capacitances: wire ground cap (half to each end) + sink loads ---
  for (const WirePiece& piece : tree.pieces_) {
    const double c = options.wire_ground_cap_ff_per_um * piece.length();
    tree.nodes_[piece.up_node].cap_ff += c / 2;
    tree.nodes_[piece.down_node].cap_ff += c / 2;
  }
  tree.sink_nodes_.reserve(net.sinks.size());
  for (const auto& sink : net.sinks) {
    const auto it = node_of.find(make_key(sink.location, tol));
    PIL_REQUIRE(it != node_of.end(),
                "net '" + net.name + "': sink is not on the routing");
    const int node = newid[it->second];
    tree.nodes_[node].cap_ff += sink.load_cap_ff;
    tree.nodes_[node].subtree_sinks += 1;  // local count; accumulated below
    tree.sink_nodes_.push_back(node);
  }

  // ---- 6. Upstream resistance (top-down) and sink counts (bottom-up) ------
  tree.nodes_[0].upstream_res = net.driver_res_ohm;
  for (int i = 1; i < n; ++i)
    tree.nodes_[i].upstream_res =
        tree.nodes_[tree.nodes_[i].parent].upstream_res +
        tree.nodes_[i].res_to_parent;
  for (int i = n - 1; i >= 1; --i)
    tree.nodes_[tree.nodes_[i].parent].subtree_sinks +=
        tree.nodes_[i].subtree_sinks;

  // ---- 7. Elmore delays: tau(child) = tau(parent) + R_edge * C_subtree ----
  std::vector<double> subtree_cap(n, 0.0);
  for (int i = 0; i < n; ++i) subtree_cap[i] = tree.nodes_[i].cap_ff;
  for (int i = n - 1; i >= 1; --i)
    subtree_cap[tree.nodes_[i].parent] += subtree_cap[i];
  // ohm * fF = 1e-15 s = 1e-3 ps.
  tree.nodes_[0].elmore_ps = net.driver_res_ohm * subtree_cap[0] * 1e-3;
  for (int i = 1; i < n; ++i)
    tree.nodes_[i].elmore_ps =
        tree.nodes_[tree.nodes_[i].parent].elmore_ps +
        tree.nodes_[i].res_to_parent * subtree_cap[i] * 1e-3;

  // ---- 8. Piece weights and off-path resistance sums ----------------------
  // K(node) = sum over sinks outside subtree(node) of R(source -> lca):
  // K(root) = 0; K(child) = K(parent) + R(parent)*(sinks(parent)-sinks(child)).
  std::vector<double> offpath(n, 0.0);
  for (int i = 1; i < n; ++i) {
    const int par = tree.nodes_[i].parent;
    offpath[i] = offpath[par] +
                 tree.nodes_[par].upstream_res *
                     (tree.nodes_[par].subtree_sinks -
                      tree.nodes_[i].subtree_sinks);
  }
  for (WirePiece& piece : tree.pieces_) {
    // Entry resistance includes any via at the piece's upstream junction:
    // res_to_parent = via + wire, so subtracting the wire from the
    // downstream node's accumulation lands exactly past the via.
    piece.upstream_res = tree.nodes_[piece.down_node].upstream_res -
                         piece.res_per_um * piece.length();
    piece.downstream_sinks = tree.nodes_[piece.down_node].subtree_sinks;
    piece.offpath_res_sum = offpath[piece.down_node];
  }

  PIL_ASSERT(tree.nodes_[0].subtree_sinks ==
                 static_cast<int>(net.sinks.size()),
             "sink accounting mismatch");
  return tree;
}

int RcTree::sink_node(int i) const {
  PIL_REQUIRE(i >= 0 && i < num_sinks(), "sink index out of range");
  return sink_nodes_[i];
}

double RcTree::sink_delay_ps(int i) const {
  return nodes_[sink_node(i)].elmore_ps;
}

double RcTree::total_sink_delay_ps() const {
  double sum = 0.0;
  for (const int node : sink_nodes_) sum += nodes_[node].elmore_ps;
  return sum;
}

double RcTree::total_cap_ff() const {
  double sum = 0.0;
  for (const RcNode& node : nodes_) sum += node.cap_ff;
  return sum;
}

double RcTree::exact_total_delay_increase_ps(int piece_idx,
                                             const geom::Point& q,
                                             double delta_cap_ff) const {
  PIL_REQUIRE(piece_idx >= 0 &&
                  piece_idx < static_cast<int>(pieces_.size()),
              "piece index out of range");
  const WirePiece& piece = pieces_[piece_idx];
  const double r_at_q = piece.res_at(q);
  return delta_cap_ff *
         (piece.downstream_sinks * r_at_q + piece.offpath_res_sum) * 1e-3;
}

std::vector<RcTree> build_all_trees(const Layout& layout,
                                    const RcTreeOptions& options) {
  std::vector<RcTree> trees;
  trees.reserve(layout.num_nets());
  for (std::size_t i = 0; i < layout.num_nets(); ++i)
    trees.push_back(
        RcTree::build(layout, static_cast<NetId>(i), options));
  return trees;
}

}  // namespace pil::rctree
