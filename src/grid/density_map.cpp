#include "pil/grid/density_map.hpp"

#include <algorithm>

#include "pil/simd/simd.hpp"

namespace pil::grid {

void DensityMap::add_layer_wires(const layout::Layout& layout,
                                 layout::LayerId layer) {
  for (const auto& seg : layout.segments()) {
    if (seg.layer != layer) continue;
    add_rect(seg.rect());
  }
}

void DensityMap::add_layer_metal_blockages(const layout::Layout& layout,
                                           layout::LayerId layer) {
  for (const auto& b : layout.blockages()) {
    if (b.layer != layer || !b.is_metal) continue;
    add_rect(b.rect);
  }
}

void DensityMap::add_rect(const geom::Rect& r) {
  TileIndex lo, hi;
  if (!dis_->tiles_overlapping(r, lo, hi)) return;
  for (int iy = lo.iy; iy <= hi.iy; ++iy) {
    for (int ix = lo.ix; ix <= hi.ix; ++ix) {
      const TileIndex t{ix, iy};
      const double a = geom::overlap_area(r, dis_->tile_rect(t));
      if (a > 0) tile_area_[dis_->tile_flat(t)] += a;
    }
  }
}

void DensityMap::recompute_tiles(const layout::Layout& layout,
                                 layout::LayerId layer,
                                 const std::vector<int>& tiles_flat) {
  std::vector<char> affected(tile_area_.size(), 0);
  for (const int f : tiles_flat) {
    PIL_REQUIRE(f >= 0 && f < static_cast<int>(tile_area_.size()),
                "tile index out of range");
    affected[f] = 1;
    tile_area_[f] = 0.0;
  }
  // Mirror of add_rect restricted to the affected tiles; the per-tile
  // accumulation sequence matches a full rebuild exactly.
  auto add_masked = [&](const geom::Rect& r) {
    TileIndex lo, hi;
    if (!dis_->tiles_overlapping(r, lo, hi)) return;
    for (int iy = lo.iy; iy <= hi.iy; ++iy) {
      for (int ix = lo.ix; ix <= hi.ix; ++ix) {
        const TileIndex t{ix, iy};
        const int flat = dis_->tile_flat(t);
        if (!affected[flat]) continue;
        const double a = geom::overlap_area(r, dis_->tile_rect(t));
        if (a > 0) tile_area_[flat] += a;
      }
    }
  };
  for (const auto& seg : layout.segments()) {
    if (seg.layer != layer) continue;
    add_masked(seg.rect());
  }
  for (const auto& b : layout.blockages()) {
    if (b.layer != layer || !b.is_metal) continue;
    add_masked(b.rect);
  }
}

void DensityMap::add_area(TileIndex t, double area) {
  PIL_REQUIRE(area >= 0, "negative feature area");
  tile_area_[dis_->tile_flat(t)] += area;
}

double DensityMap::window_area(int wx, int wy) const {
  PIL_REQUIRE(wx >= 0 && wx < dis_->windows_x() && wy >= 0 &&
                  wy < dis_->windows_y(),
              "window index out of range");
  double sum = 0.0;
  for (int iy = wy; iy < wy + dis_->r(); ++iy)
    for (int ix = wx; ix < wx + dis_->r(); ++ix)
      sum += tile_area_[dis_->tile_flat(TileIndex{ix, iy})];
  return sum;
}

double DensityMap::window_density(int wx, int wy) const {
  const geom::Rect w = dis_->window_rect(wx, wy);
  PIL_ASSERT(w.area() > 0, "degenerate window");
  return window_area(wx, wy) / w.area();
}

std::string render_density_ascii(const DensityMap& density, double lo,
                                 double hi) {
  const Dissection& dis = density.dissection();
  PIL_REQUIRE(dis.num_windows() > 0, "dissection has no windows");
  if (lo < 0 || hi < 0) {
    const DensityStats s = density.stats();
    if (lo < 0) lo = s.min_density;
    if (hi < 0) hi = s.max_density;
  }
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = static_cast<int>(sizeof(kRamp)) - 2;
  const double span = std::max(hi - lo, 1e-12);

  std::string out;
  out.reserve(static_cast<std::size_t>(dis.windows_y()) *
              (dis.windows_x() + 1));
  for (int wy = dis.windows_y() - 1; wy >= 0; --wy) {
    for (int wx = 0; wx < dis.windows_x(); ++wx) {
      const double t = (density.window_density(wx, wy) - lo) / span;
      const int level =
          std::clamp(static_cast<int>(t * kLevels + 0.5), 0, kLevels);
      out.push_back(kRamp[level]);
    }
    out.push_back('\n');
  }
  return out;
}

DensityStats DensityMap::stats() const {
  DensityStats s;
  const int nx = dis_->windows_x();
  const int ny = dis_->windows_y();
  PIL_REQUIRE(nx > 0 && ny > 0, "dissection has no windows");
  const std::size_t nw = static_cast<std::size_t>(nx) * ny;
  const simd::Kernels& K = simd::kernels();

  // Window sums and densities as columns; the kernels keep each window's
  // accumulation order (and the division) identical to window_density().
  std::vector<double> sums(nw);
  std::vector<double> areas(nw);
  std::vector<double> dens(nw);
  K.window_sums(tile_area_.data(), dis_->tiles_x(), dis_->tiles_y(),
                dis_->r(), sums.data());
  for (int wy = 0; wy < ny; ++wy) {
    for (int wx = 0; wx < nx; ++wx) {
      const geom::Rect w = dis_->window_rect(wx, wy);
      PIL_ASSERT(w.area() > 0, "degenerate window");
      areas[static_cast<std::size_t>(wy) * nx + wx] = w.area();
    }
  }
  K.div2(sums.data(), areas.data(), nw, dens.data());
  K.min_max(dens.data(), nw, &s.min_density, &s.max_density);
  double sum = 0.0;
  for (const double d : dens) sum += d;
  s.mean_density = sum / (static_cast<double>(nx) * ny);
  return s;
}

}  // namespace pil::grid
