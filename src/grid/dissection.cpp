#include "pil/grid/dissection.hpp"

#include <algorithm>
#include <cmath>

namespace pil::grid {

Dissection::Dissection(const geom::Rect& die, double window_um, int r)
    : die_(die), window_um_(window_um), r_(r) {
  PIL_REQUIRE(!die.empty(), "dissection of empty die");
  PIL_REQUIRE(window_um > 0, "window size must be positive");
  PIL_REQUIRE(r >= 1, "dissection parameter r must be >= 1");
  PIL_REQUIRE(window_um <= std::min(die.width(), die.height()),
              "window larger than die");
  tile_um_ = window_um / r;
  tiles_x_ = static_cast<int>(std::ceil(die.width() / tile_um_ - geom::kEps));
  tiles_y_ = static_cast<int>(std::ceil(die.height() / tile_um_ - geom::kEps));
  PIL_ASSERT(tiles_x_ >= r_ && tiles_y_ >= r_, "die smaller than one window");
}

geom::Rect Dissection::tile_rect(TileIndex t) const {
  PIL_REQUIRE(t.ix >= 0 && t.ix < tiles_x_ && t.iy >= 0 && t.iy < tiles_y_,
              "tile index out of range");
  const double x0 = die_.xlo + t.ix * tile_um_;
  const double y0 = die_.ylo + t.iy * tile_um_;
  return geom::Rect{x0, y0, std::min(x0 + tile_um_, die_.xhi),
                    std::min(y0 + tile_um_, die_.yhi)};
}

TileIndex Dissection::tile_at(const geom::Point& p) const {
  PIL_REQUIRE(die_.contains(p), "point outside die");
  int ix = static_cast<int>(std::floor((p.x - die_.xlo) / tile_um_));
  int iy = static_cast<int>(std::floor((p.y - die_.ylo) / tile_um_));
  ix = std::clamp(ix, 0, tiles_x_ - 1);
  iy = std::clamp(iy, 0, tiles_y_ - 1);
  return TileIndex{ix, iy};
}

bool Dissection::tiles_overlapping(const geom::Rect& rect, TileIndex& lo,
                                   TileIndex& hi) const {
  const geom::Rect ov = geom::intersect(rect, die_);
  if (ov.empty() || ov.width() <= 0 || ov.height() <= 0) {
    // Degenerate overlaps (zero area) still map to the tile(s) they touch;
    // callers that need area will get zero. Report emptiness only when
    // there is no intersection at all.
    if (ov.empty()) return false;
  }
  lo = tile_at(geom::Point{ov.xlo, ov.ylo});
  // The high corner may sit exactly on a tile boundary; nudge inward so the
  // range does not include an extra zero-overlap tile row/column.
  const double xh = std::max(ov.xhi - geom::kEps, ov.xlo);
  const double yh = std::max(ov.yhi - geom::kEps, ov.ylo);
  hi = tile_at(geom::Point{xh, yh});
  return true;
}

geom::Rect Dissection::window_rect(int wx, int wy) const {
  PIL_REQUIRE(wx >= 0 && wx < windows_x() && wy >= 0 && wy < windows_y(),
              "window index out of range");
  const double x0 = die_.xlo + wx * tile_um_;
  const double y0 = die_.ylo + wy * tile_um_;
  return geom::Rect{x0, y0, std::min(x0 + window_um_, die_.xhi),
                    std::min(y0 + window_um_, die_.yhi)};
}

}  // namespace pil::grid
