#include "pil/grid/smoothness.hpp"

#include <algorithm>
#include <cmath>

namespace pil::grid {

SmoothnessReport analyze_smoothness(const DensityMap& density) {
  const Dissection& dis = density.dissection();
  const int nx = dis.windows_x();
  const int ny = dis.windows_y();
  PIL_REQUIRE(nx > 0 && ny > 0, "dissection has no windows");

  // Cache densities once; the pair scans below revisit each window 4x.
  std::vector<double> d(static_cast<std::size_t>(nx) * ny);
  for (int wy = 0; wy < ny; ++wy)
    for (int wx = 0; wx < nx; ++wx)
      d[static_cast<std::size_t>(wy) * nx + wx] = density.window_density(wx, wy);
  auto at = [&](int wx, int wy) {
    return d[static_cast<std::size_t>(wy) * nx + wx];
  };

  SmoothnessReport report;
  const DensityStats stats = density.stats();
  report.variation = stats.variation();

  double step_sum = 0.0;
  long long step_count = 0;
  for (int wy = 0; wy < ny; ++wy) {
    for (int wx = 0; wx < nx; ++wx) {
      if (wx + 1 < nx) {
        const double step = std::fabs(at(wx, wy) - at(wx + 1, wy));
        report.type1 = std::max(report.type1, step);
        step_sum += step;
        ++step_count;
      }
      if (wy + 1 < ny) {
        const double step = std::fabs(at(wx, wy) - at(wx, wy + 1));
        report.type1 = std::max(report.type1, step);
        step_sum += step;
        ++step_count;
      }
      if (wx + dis.r() < nx)
        report.type2 = std::max(report.type2,
                                std::fabs(at(wx, wy) - at(wx + dis.r(), wy)));
      if (wy + dis.r() < ny)
        report.type2 = std::max(report.type2,
                                std::fabs(at(wx, wy) - at(wx, wy + dis.r())));
    }
  }
  report.mean_abs_step = step_count ? step_sum / step_count : 0.0;
  return report;
}

}  // namespace pil::grid
