#pragma once
/// Internal backend tables (dispatch.cpp wires them to the public API).

#include "pil/simd/simd.hpp"

namespace pil::simd::detail {

const Kernels& scalar_kernels();

/// Null when the avx2 backend is compiled out (PIL_ENABLE_AVX2=OFF or a
/// non-x86 target); CPUID support is checked separately by dispatch.
const Kernels* avx2_kernels();

}  // namespace pil::simd::detail
