/// \file kernels_scalar.cpp
/// The reference backend. These loops ARE the kernel semantics: each
/// output element's floating-point expression tree matches the pre-kernel
/// inline code operation for operation, and the avx2 backend must
/// reproduce every result bit for bit (tests/test_simd.cpp).

#include <algorithm>
#include <cmath>

#include "src/simd/kernels.hpp"

namespace pil::simd::detail {

namespace {

void window_sums_scalar(const double* tile, int tiles_x, int tiles_y, int r,
                        double* out) {
  const int nwx = tiles_x - r + 1;
  const int nwy = tiles_y - r + 1;
  for (int wy = 0; wy < nwy; ++wy) {
    for (int wx = 0; wx < nwx; ++wx) {
      double sum = 0.0;
      for (int iy = wy; iy < wy + r; ++iy)
        for (int ix = wx; ix < wx + r; ++ix)
          sum += tile[static_cast<std::size_t>(iy) * tiles_x + ix];
      out[static_cast<std::size_t>(wy) * nwx + wx] = sum;
    }
  }
}

void div2_scalar(const double* num, const double* den, std::size_t n,
                 double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = num[i] / den[i];
}

void min_max_scalar(const double* a, std::size_t n, double* mn, double* mx) {
  double lo = a[0];
  double hi = a[0];
  for (std::size_t i = 1; i < n; ++i) {
    lo = std::min(lo, a[i]);
    hi = std::max(hi, a[i]);
  }
  *mn = lo;
  *mx = hi;
}

void add2_scalar(const double* a, const double* b, std::size_t n,
                 double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void entry_res_scalar(const double* base, const double* slope,
                      const double* ux, const double* uy, const double* qx,
                      const double* qy, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = base[i] +
             slope[i] * (std::fabs(ux[i] - qx[i]) + std::fabs(uy[i] - qy[i]));
}

void weighted_pair_scalar(const double* wb, const double* rb,
                          const double* wa, const double* ra, std::size_t n,
                          double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = wb[i] * rb[i] + wa[i] * ra[i];
}

void exact_pair_scalar(const double* sb, const double* rb, const double* sa,
                       const double* ra, const double* ob, const double* oa,
                       std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = sb[i] * rb[i] + sa[i] * ra[i] + ob[i] + oa[i];
}

void scaled_scores_scalar(const double* cap_ff, const double* rf, double s,
                          std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = cap_ff[i] * s * rf[i];
}

void delta_scores_scalar(const double* hi, const double* lo, const double* rf,
                         double s, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = (hi[i] - lo[i]) * s * rf[i];
}

bool block_any_above_scalar(const double* grid, int stride, int x0, int x1,
                            int y0, int y1, double add, double threshold) {
  for (int y = y0; y <= y1; ++y) {
    const double* row = grid + static_cast<std::size_t>(y) * stride;
    for (int x = x0; x <= x1; ++x)
      if (row[x] + add > threshold) return true;
  }
  return false;
}

void block_add_scalar_scalar(double* grid, int stride, int x0, int x1, int y0,
                             int y1, double v) {
  for (int y = y0; y <= y1; ++y) {
    double* row = grid + static_cast<std::size_t>(y) * stride;
    for (int x = x0; x <= x1; ++x) row[x] += v;
  }
}

long long sum_i32_scalar(const std::int32_t* a, std::size_t n) {
  long long sum = 0;
  for (std::size_t i = 0; i < n; ++i) sum += a[i];
  return sum;
}

void site_rows_scalar(int n, double y0, double pitch, double half,
                      double die_ylo, double tile_um, int max_row,
                      std::int32_t* out) {
  for (int i = 0; i < n; ++i) {
    const double cy = (y0 + i * pitch) + half;
    const int row = static_cast<int>(std::floor((cy - die_ylo) / tile_um));
    out[i] = std::clamp(row, 0, max_row);
  }
}

}  // namespace

const Kernels& scalar_kernels() {
  static const Kernels k = {
      &window_sums_scalar,    &div2_scalar,
      &min_max_scalar,        &add2_scalar,
      &entry_res_scalar,      &weighted_pair_scalar,
      &exact_pair_scalar,     &scaled_scores_scalar,
      &delta_scores_scalar,   &block_any_above_scalar,
      &block_add_scalar_scalar, &sum_i32_scalar,
      &site_rows_scalar,
  };
  return k;
}

}  // namespace pil::simd::detail
