/// \file dispatch.cpp
/// Backend resolution: compiled-in tables + CPUID at first use, with the
/// PIL_SIMD environment override and set_backend() (the --simd flag).

#include <atomic>
#include <cstdlib>

#include "pil/util/error.hpp"
#include "src/simd/kernels.hpp"

namespace pil::simd {

namespace {

bool cpu_has_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

/// -1 = unresolved; otherwise a Backend value. Resolution is idempotent,
/// so a benign race at first use settles on the same value.
std::atomic<int> g_backend{-1};

Backend resolve_initial() {
  if (const char* env = std::getenv("PIL_SIMD")) {
    const Backend b = backend_from_string(env);
    PIL_REQUIRE(b != Backend::kAvx2 || avx2_supported(),
                "PIL_SIMD=avx2 but the avx2 backend is unavailable "
                "(compiled out or CPU lacks AVX2)");
    return b;
  }
  return avx2_supported() ? Backend::kAvx2 : Backend::kScalar;
}

}  // namespace

const char* to_string(Backend b) {
  return b == Backend::kAvx2 ? "avx2" : "scalar";
}

Backend backend_from_string(const std::string& name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "avx2") return Backend::kAvx2;
  throw Error("unknown simd backend '" + name + "' (want scalar|avx2)");
}

bool avx2_supported() {
  static const bool ok = detail::avx2_kernels() != nullptr && cpu_has_avx2();
  return ok;
}

Backend active_backend() {
  int b = g_backend.load(std::memory_order_relaxed);
  if (b < 0) {
    b = static_cast<int>(resolve_initial());
    g_backend.store(b, std::memory_order_relaxed);
  }
  return static_cast<Backend>(b);
}

const char* backend_name() { return to_string(active_backend()); }

void set_backend(Backend b) {
  PIL_REQUIRE(b != Backend::kAvx2 || avx2_supported(),
              "avx2 backend unavailable (compiled out or CPU lacks AVX2)");
  g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
}

const Kernels& kernels(Backend b) {
  if (b == Backend::kAvx2) {
    PIL_REQUIRE(avx2_supported(),
                "avx2 backend unavailable (compiled out or CPU lacks AVX2)");
    return *detail::avx2_kernels();
  }
  return detail::scalar_kernels();
}

const Kernels& kernels() { return kernels(active_backend()); }

}  // namespace pil::simd
