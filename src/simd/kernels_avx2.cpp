/// \file kernels_avx2.cpp
/// 256-bit blockwise backend. Compiled with -mavx2 (and only -mavx2: no
/// -mfma, so the compiler cannot contract mul+add and break the 0-ulp
/// contract). Each kernel parallelizes across independent output elements
/// while keeping every element's operation order identical to
/// kernels_scalar.cpp; tails shorter than one 4-lane block run the scalar
/// expression unchanged. When the backend is compiled out
/// (PIL_ENABLE_AVX2=OFF or a non-x86 target) this TU shrinks to a null
/// table and dispatch never offers avx2.

#include "src/simd/kernels.hpp"

#if defined(PIL_HAVE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace pil::simd::detail {

namespace {

inline __m256d abs_pd(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

void window_sums_avx2(const double* tile, int tiles_x, int tiles_y, int r,
                      double* out) {
  const int nwx = tiles_x - r + 1;
  const int nwy = tiles_y - r + 1;
  for (int wy = 0; wy < nwy; ++wy) {
    double* orow = out + static_cast<std::size_t>(wy) * nwx;
    int wx = 0;
    for (; wx + 4 <= nwx; wx += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (int iy = wy; iy < wy + r; ++iy) {
        const double* row = tile + static_cast<std::size_t>(iy) * tiles_x;
        for (int ix = 0; ix < r; ++ix)
          acc = _mm256_add_pd(acc, _mm256_loadu_pd(row + wx + ix));
      }
      _mm256_storeu_pd(orow + wx, acc);
    }
    for (; wx < nwx; ++wx) {
      double sum = 0.0;
      for (int iy = wy; iy < wy + r; ++iy)
        for (int ix = wx; ix < wx + r; ++ix)
          sum += tile[static_cast<std::size_t>(iy) * tiles_x + ix];
      orow[wx] = sum;
    }
  }
}

void div2_avx2(const double* num, const double* den, std::size_t n,
               double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(out + i, _mm256_div_pd(_mm256_loadu_pd(num + i),
                                            _mm256_loadu_pd(den + i)));
  for (; i < n; ++i) out[i] = num[i] / den[i];
}

void min_max_avx2(const double* a, std::size_t n, double* mn, double* mx) {
  std::size_t i = 0;
  double lo = a[0];
  double hi = a[0];
  if (n >= 4) {
    __m256d vlo = _mm256_loadu_pd(a);
    __m256d vhi = vlo;
    for (i = 4; i + 4 <= n; i += 4) {
      const __m256d v = _mm256_loadu_pd(a + i);
      vlo = _mm256_min_pd(vlo, v);
      vhi = _mm256_max_pd(vhi, v);
    }
    alignas(32) double l[4], h[4];
    _mm256_store_pd(l, vlo);
    _mm256_store_pd(h, vhi);
    lo = std::min(std::min(l[0], l[1]), std::min(l[2], l[3]));
    hi = std::max(std::max(h[0], h[1]), std::max(h[2], h[3]));
  }
  for (; i < n; ++i) {
    lo = std::min(lo, a[i]);
    hi = std::max(hi, a[i]);
  }
  *mn = lo;
  *mx = hi;
}

void add2_avx2(const double* a, const double* b, std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void entry_res_avx2(const double* base, const double* slope, const double* ux,
                    const double* uy, const double* qx, const double* qy,
                    std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dx =
        abs_pd(_mm256_sub_pd(_mm256_loadu_pd(ux + i), _mm256_loadu_pd(qx + i)));
    const __m256d dy =
        abs_pd(_mm256_sub_pd(_mm256_loadu_pd(uy + i), _mm256_loadu_pd(qy + i)));
    const __m256d r = _mm256_add_pd(
        _mm256_loadu_pd(base + i),
        _mm256_mul_pd(_mm256_loadu_pd(slope + i), _mm256_add_pd(dx, dy)));
    _mm256_storeu_pd(out + i, r);
  }
  for (; i < n; ++i)
    out[i] = base[i] +
             slope[i] * (std::fabs(ux[i] - qx[i]) + std::fabs(uy[i] - qy[i]));
}

void weighted_pair_avx2(const double* wb, const double* rb, const double* wa,
                        const double* ra, std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d r = _mm256_add_pd(
        _mm256_mul_pd(_mm256_loadu_pd(wb + i), _mm256_loadu_pd(rb + i)),
        _mm256_mul_pd(_mm256_loadu_pd(wa + i), _mm256_loadu_pd(ra + i)));
    _mm256_storeu_pd(out + i, r);
  }
  for (; i < n; ++i) out[i] = wb[i] * rb[i] + wa[i] * ra[i];
}

void exact_pair_avx2(const double* sb, const double* rb, const double* sa,
                     const double* ra, const double* ob, const double* oa,
                     std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d r = _mm256_add_pd(
        _mm256_mul_pd(_mm256_loadu_pd(sb + i), _mm256_loadu_pd(rb + i)),
        _mm256_mul_pd(_mm256_loadu_pd(sa + i), _mm256_loadu_pd(ra + i)));
    r = _mm256_add_pd(r, _mm256_loadu_pd(ob + i));
    r = _mm256_add_pd(r, _mm256_loadu_pd(oa + i));
    _mm256_storeu_pd(out + i, r);
  }
  for (; i < n; ++i)
    out[i] = sb[i] * rb[i] + sa[i] * ra[i] + ob[i] + oa[i];
}

void scaled_scores_avx2(const double* cap_ff, const double* rf, double s,
                        std::size_t n, double* out) {
  const __m256d sv = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d r =
        _mm256_mul_pd(_mm256_mul_pd(_mm256_loadu_pd(cap_ff + i), sv),
                      _mm256_loadu_pd(rf + i));
    _mm256_storeu_pd(out + i, r);
  }
  for (; i < n; ++i) out[i] = cap_ff[i] * s * rf[i];
}

void delta_scores_avx2(const double* hi, const double* lo, const double* rf,
                       double s, std::size_t n, double* out) {
  const __m256d sv = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(hi + i), _mm256_loadu_pd(lo + i));
    _mm256_storeu_pd(
        out + i, _mm256_mul_pd(_mm256_mul_pd(d, sv), _mm256_loadu_pd(rf + i)));
  }
  for (; i < n; ++i) out[i] = (hi[i] - lo[i]) * s * rf[i];
}

bool block_any_above_avx2(const double* grid, int stride, int x0, int x1,
                          int y0, int y1, double add, double threshold) {
  const __m256d av = _mm256_set1_pd(add);
  const __m256d tv = _mm256_set1_pd(threshold);
  for (int y = y0; y <= y1; ++y) {
    const double* row = grid + static_cast<std::size_t>(y) * stride;
    int x = x0;
    for (; x + 4 <= x1 + 1; x += 4) {
      const __m256d v = _mm256_add_pd(_mm256_loadu_pd(row + x), av);
      const __m256d gt = _mm256_cmp_pd(v, tv, _CMP_GT_OQ);
      if (_mm256_movemask_pd(gt) != 0) return true;
    }
    for (; x <= x1; ++x)
      if (row[x] + add > threshold) return true;
  }
  return false;
}

void block_add_scalar_avx2(double* grid, int stride, int x0, int x1, int y0,
                           int y1, double v) {
  const __m256d vv = _mm256_set1_pd(v);
  for (int y = y0; y <= y1; ++y) {
    double* row = grid + static_cast<std::size_t>(y) * stride;
    int x = x0;
    for (; x + 4 <= x1 + 1; x += 4)
      _mm256_storeu_pd(row + x, _mm256_add_pd(_mm256_loadu_pd(row + x), vv));
    for (; x <= x1; ++x) row[x] += v;
  }
}

long long sum_i32_avx2(const std::int32_t* a, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    acc = _mm256_add_epi64(acc,
                           _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v)));
    acc = _mm256_add_epi64(acc,
                           _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1)));
  }
  alignas(32) long long lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  long long sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) sum += a[i];
  return sum;
}

void site_rows_avx2(int n, double y0, double pitch, double half,
                    double die_ylo, double tile_um, int max_row,
                    std::int32_t* out) {
  const __m256d y0v = _mm256_set1_pd(y0);
  const __m256d pv = _mm256_set1_pd(pitch);
  const __m256d hv = _mm256_set1_pd(half);
  const __m256d lov = _mm256_set1_pd(die_ylo);
  const __m256d tv = _mm256_set1_pd(tile_um);
  const __m256d ramp = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
  const __m128i zero = _mm_setzero_si128();
  const __m128i maxv = _mm_set1_epi32(max_row);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d iv =
        _mm256_add_pd(_mm256_set1_pd(static_cast<double>(i)), ramp);
    const __m256d cy =
        _mm256_add_pd(_mm256_add_pd(y0v, _mm256_mul_pd(iv, pv)), hv);
    const __m256d val = _mm256_div_pd(_mm256_sub_pd(cy, lov), tv);
    const __m128i row = _mm256_cvttpd_epi32(_mm256_floor_pd(val));
    const __m128i clamped = _mm_min_epi32(_mm_max_epi32(row, zero), maxv);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), clamped);
  }
  for (; i < n; ++i) {
    const double cy = (y0 + i * pitch) + half;
    const int row = static_cast<int>(std::floor((cy - die_ylo) / tile_um));
    out[i] = std::clamp(row, 0, max_row);
  }
}

}  // namespace

const Kernels* avx2_kernels() {
  static const Kernels k = {
      &window_sums_avx2,    &div2_avx2,
      &min_max_avx2,        &add2_avx2,
      &entry_res_avx2,      &weighted_pair_avx2,
      &exact_pair_avx2,     &scaled_scores_avx2,
      &delta_scores_avx2,   &block_any_above_avx2,
      &block_add_scalar_avx2, &sum_i32_avx2,
      &site_rows_avx2,
  };
  return &k;
}

}  // namespace pil::simd::detail

#else  // !(PIL_HAVE_AVX2 && __AVX2__)

namespace pil::simd::detail {

const Kernels* avx2_kernels() { return nullptr; }

}  // namespace pil::simd::detail

#endif
