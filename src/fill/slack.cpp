#include "pil/fill/slack.hpp"

#include <algorithm>
#include <cmath>

#include "pil/geom/interval.hpp"
#include "pil/util/log.hpp"

namespace pil::fill {

namespace {

using geom::Interval;
using geom::Rect;
using layout::Orientation;
using rctree::WirePiece;

/// Global x site grid: column c's feature occupies
/// [die.xlo + gap/2 + c*pitch, +feature]. Columns keep gap/2 from the die
/// edge so features never touch the boundary.
struct ColumnGrid {
  double origin;  // x_lo of column 0
  double pitch;
  double feature;
  int count;

  ColumnGrid(const Rect& die, const FillRules& rules)
      : origin(die.xlo + rules.gap_um / 2),
        pitch(rules.pitch()),
        feature(rules.feature_um) {
    count = 0;
    while (origin + count * pitch + feature + rules.gap_um / 2 <=
           die.xhi + geom::kEps)
      ++count;
  }

  double x_lo(int c) const { return origin + c * pitch; }
  double x_center(int c) const { return x_lo(c) + feature / 2; }

  /// Columns whose footprint intersects [lo, hi] (clamped to the grid).
  void overlapping(double lo, double hi, int& c0, int& c1) const {
    c0 = static_cast<int>(std::ceil((lo - feature - origin) / pitch +
                                    geom::kEps));
    c1 = static_cast<int>(std::floor((hi - origin) / pitch - geom::kEps));
    c0 = std::max(c0, 0);
    c1 = std::min(c1, count - 1);
  }

  /// Columns whose footprint lies fully inside [lo, hi].
  void inside(double lo, double hi, int& c0, int& c1) const {
    c0 = static_cast<int>(std::ceil((lo - origin) / pitch - geom::kEps));
    c1 = static_cast<int>(
        std::floor((hi - feature - origin) / pitch + geom::kEps));
    c0 = std::max(c0, 0);
    c1 = std::min(c1, count - 1);
  }
};

struct ColumnState {
  double start = 0.0;       ///< top edge of the previous boundary
  BoundKind kind = BoundKind::kDieEdge;
  int piece = -1;
};

/// Scan one rectangular region and append the slack columns found. Piece
/// rects are clipped to the region. `edge_kind` labels the region's own
/// y-boundaries. `blocked` holds, per global column, the y-intervals made
/// unusable by vertical wires (already buffer-inflated).
void scan_region(const Rect& region, const ColumnGrid& grid,
                 const std::vector<std::pair<int, Rect>>& hpieces_sorted,
                 const std::vector<geom::IntervalSet>& blocked,
                 const FillRules& rules, SlackMode mode, BoundKind edge_kind,
                 std::vector<SlackColumn>& out) {
  int c_begin, c_end;
  grid.inside(region.xlo, region.xhi, c_begin, c_end);
  if (c_begin > c_end) return;

  std::vector<ColumnState> state(c_end - c_begin + 1);
  for (auto& s : state) {
    s.start = region.ylo;
    s.kind = edge_kind;
    s.piece = -1;
  }

  const double b = rules.buffer_um;

  auto emit = [&](int c, const ColumnState& below, BoundKind above_kind,
                  int above_piece, double above_bottom) {
    // Mode I keeps only gaps bounded by two active lines.
    if (mode == SlackMode::kI &&
        (below.kind != BoundKind::kLine || above_kind != BoundKind::kLine))
      return;
    SlackColumn col;
    col.col_index = c;
    col.x_lo = grid.x_lo(c);
    col.x_center = grid.x_center(c);
    col.below = below.kind;
    col.below_piece = below.piece;
    col.above = above_kind;
    col.above_piece = above_piece;
    col.gap_um = above_bottom - below.start;
    const double usable_lo =
        below.start + (below.kind == BoundKind::kLine ? b : rules.gap_um / 2);
    const double usable_hi =
        above_bottom - (above_kind == BoundKind::kLine ? b : rules.gap_um / 2);
    if (usable_hi - usable_lo < rules.feature_um) return;
    // Vertical wires pierce the gap into sub-runs. Each sub-run becomes its
    // own column sharing the bounding lines and line distance (the series
    // parallel-plate model only sees the feature count in the gap).
    for (const Interval& free :
         blocked[c].gaps(Interval{usable_lo, usable_hi})) {
      col.span_lo = free.lo;
      col.span_hi = free.hi;
      col.capacity = rules.capacity_in_span(free.length());
      if (col.capacity > 0) out.push_back(col);
    }
  };

  for (const auto& [piece_idx, rect] : hpieces_sorted) {
    const Rect clipped = geom::intersect(rect, region);
    if (clipped.empty() || clipped.width() <= 0) continue;
    int c0, c1;
    grid.overlapping(clipped.xlo - b, clipped.xhi + b, c0, c1);
    c0 = std::max(c0, c_begin);
    c1 = std::min(c1, c_end);
    for (int c = c0; c <= c1; ++c) {
      ColumnState& s = state[c - c_begin];
      if (clipped.ylo > s.start + geom::kEps)
        emit(c, s, BoundKind::kLine, piece_idx, clipped.ylo);
      if (clipped.yhi > s.start) {
        s.start = clipped.yhi;
        s.kind = BoundKind::kLine;
        s.piece = piece_idx;
      }
    }
  }
  for (int c = c_begin; c <= c_end; ++c) {
    const ColumnState& s = state[c - c_begin];
    if (region.yhi > s.start + geom::kEps)
      emit(c, s, edge_kind, -1, region.yhi);
  }
}

}  // namespace

const char* to_string(SlackMode m) {
  switch (m) {
    case SlackMode::kI: return "SlackColumn-I";
    case SlackMode::kII: return "SlackColumn-II";
    case SlackMode::kIII: return "SlackColumn-III";
  }
  return "?";
}

SlackColumns::SlackColumns(std::vector<SlackColumn> columns,
                           std::vector<std::vector<TileColumnPart>> tile_parts,
                           bool transposed)
    : columns_(std::move(columns)),
      tile_parts_(std::move(tile_parts)),
      transposed_(transposed) {}

geom::Rect SlackColumns::site_rect(const SlackColumn& col, int site,
                                   const FillRules& rules) const {
  const double y = col.site_y(site, rules);
  const geom::Rect r{col.x_lo, y, col.x_lo + rules.feature_um,
                     y + rules.feature_um};
  if (!transposed_) return r;
  return geom::Rect{r.ylo, r.xlo, r.yhi, r.xhi};
}

geom::Point SlackColumns::column_cross_point(
    const SlackColumn& col, const rctree::WirePiece& piece) const {
  // In the scan frame the column sits at cross coordinate x_center; project
  // it onto the line in real coordinates.
  return transposed_ ? geom::Point{piece.up.x, col.x_center}
                     : geom::Point{col.x_center, piece.up.y};
}

const std::vector<TileColumnPart>& SlackColumns::tile_parts(
    int tile_flat) const {
  PIL_REQUIRE(tile_flat >= 0 && tile_flat < num_tiles(),
              "tile index out of range");
  return tile_parts_[tile_flat];
}

int SlackColumns::tile_capacity(int tile_flat) const {
  int sum = 0;
  for (const auto& part : tile_parts(tile_flat)) sum += part.num_sites;
  return sum;
}

long long SlackColumns::total_capacity() const {
  long long sum = 0;
  for (const auto& parts : tile_parts_)
    for (const auto& part : parts) sum += part.num_sites;
  return sum;
}

std::vector<rctree::WirePiece> flatten_pieces(
    const std::vector<rctree::RcTree>& trees) {
  std::vector<WirePiece> out;
  std::size_t total = 0;
  for (const auto& t : trees) total += t.pieces().size();
  out.reserve(total);
  for (const auto& t : trees)
    out.insert(out.end(), t.pieces().begin(), t.pieces().end());
  return out;
}

SlackColumns extract_slack_columns(const layout::Layout& layout,
                                   const grid::Dissection& dissection,
                                   const std::vector<WirePiece>& pieces,
                                   layout::LayerId layer,
                                   const FillRules& rules, SlackMode mode) {
  rules.validate();
  // Vertical-preference layers are scanned in a transposed frame where the
  // routing direction is horizontal; only geometry is swapped -- tile part
  // indices are mapped back to the real dissection at the end.
  const bool transposed = layout.layer(layer).preferred_direction ==
                          layout::Orientation::kVertical;
  auto xf = [&](const Rect& r) {
    return transposed ? Rect{r.ylo, r.xlo, r.yhi, r.xhi} : r;
  };
  const Rect die = xf(layout.die());
  const grid::Dissection scan_dis =
      transposed ? grid::Dissection(die, dissection.window_um(),
                                    dissection.r())
                 : dissection;
  // Real flat tile index for a scan-frame flat index.
  auto real_flat = [&](int scan_flat) {
    if (!transposed) return scan_flat;
    const grid::TileIndex t = scan_dis.tile_unflat(scan_flat);
    return dissection.tile_flat(grid::TileIndex{t.iy, t.ix});
  };

  const ColumnGrid grid(die, rules);
  const double b = rules.buffer_um;

  // Partition pieces on the layer: routing-direction pieces are the active
  // lines; cross-direction pieces only block. Rects live in the scan frame.
  const Orientation routing_dir =
      transposed ? Orientation::kVertical : Orientation::kHorizontal;
  std::vector<std::pair<int, Rect>> hpieces;
  std::vector<Rect> vpieces;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (pieces[i].layer != layer) continue;
    if (pieces[i].orientation == routing_dir)
      hpieces.emplace_back(static_cast<int>(i), xf(pieces[i].rect()));
    else
      vpieces.push_back(xf(pieces[i].rect()));
  }
  std::sort(hpieces.begin(), hpieces.end(),
            [](const auto& a, const auto& b2) {
              return a.second.ylo < b2.second.ylo;
            });

  // Per-column blockage intervals (buffer-inflated in both directions):
  // wrong-direction wires and explicit fill blockages both pierce gaps.
  std::vector<geom::IntervalSet> blocked(grid.count);
  auto block_rect = [&](const Rect& v) {
    int c0, c1;
    grid.overlapping(v.xlo - b, v.xhi + b, c0, c1);
    for (int c = c0; c <= c1; ++c) blocked[c].insert(v.ylo - b, v.yhi + b);
  };
  for (const Rect& v : vpieces) block_rect(v);
  for (const Rect& v : layout.blockages_on_layer(layer)) block_rect(xf(v));

  std::vector<SlackColumn> columns;
  std::vector<std::vector<TileColumnPart>> tile_parts(dissection.num_tiles());

  if (mode == SlackMode::kIII) {
    scan_region(die, grid, hpieces, blocked, rules, mode, BoundKind::kDieEdge,
                columns);
    // Split each column's site stack across the tile rows it crosses.
    for (std::size_t ci = 0; ci < columns.size(); ++ci) {
      const SlackColumn& col = columns[ci];
      int run_first = 0;
      int run_tile = -1;
      for (int i = 0; i < col.capacity; ++i) {
        const double cy = col.site_y(i, rules) + rules.feature_um / 2;
        const grid::TileIndex t =
            scan_dis.tile_at(geom::Point{col.x_center, cy});
        const int flat = real_flat(scan_dis.tile_flat(t));
        if (flat != run_tile) {
          if (run_tile >= 0)
            tile_parts[run_tile].push_back(
                TileColumnPart{static_cast<int>(ci), run_first, i - run_first});
          run_tile = flat;
          run_first = i;
        }
      }
      if (run_tile >= 0)
        tile_parts[run_tile].push_back(TileColumnPart{
            static_cast<int>(ci), run_first, col.capacity - run_first});
    }
  } else {
    // Modes I/II: independent scan per tile; each column is one part.
    for (int scan_flat = 0; scan_flat < scan_dis.num_tiles(); ++scan_flat) {
      const Rect tile = scan_dis.tile_rect(scan_dis.tile_unflat(scan_flat));
      const std::size_t before = columns.size();
      // Clip the piece set to those overlapping the tile (x-inflated so a
      // line just outside the tile in x does not bound columns -- per the
      // paper, only lines *intersecting* the tile are scanned).
      std::vector<std::pair<int, Rect>> local;
      for (const auto& [idx, rect] : hpieces)
        if (geom::overlaps_strictly(rect, tile)) local.emplace_back(idx, rect);
      scan_region(tile, grid, local, blocked, rules, mode,
                  BoundKind::kTileEdge, columns);
      for (std::size_t ci = before; ci < columns.size(); ++ci)
        tile_parts[real_flat(scan_flat)].push_back(TileColumnPart{
            static_cast<int>(ci), 0, columns[ci].capacity});
    }
  }

  PIL_INFO(to_string(mode) << ": " << columns.size() << " slack columns");
  return SlackColumns(std::move(columns), std::move(tile_parts), transposed);
}

}  // namespace pil::fill
