#include "pil/fill/slack.hpp"

#include <algorithm>
#include <cmath>

#include "pil/geom/interval.hpp"
#include "pil/simd/simd.hpp"
#include "pil/util/log.hpp"

namespace pil::fill {

namespace {

using geom::Interval;
using geom::Rect;
using layout::Orientation;
using rctree::WirePiece;

/// Global x site grid: column c's feature occupies
/// [die.xlo + gap/2 + c*pitch, +feature]. Columns keep gap/2 from the die
/// edge so features never touch the boundary.
struct ColumnGrid {
  double origin;  // x_lo of column 0
  double pitch;
  double feature;
  int count;

  ColumnGrid(const Rect& die, const FillRules& rules)
      : origin(die.xlo + rules.gap_um / 2),
        pitch(rules.pitch()),
        feature(rules.feature_um) {
    count = 0;
    while (origin + count * pitch + feature + rules.gap_um / 2 <=
           die.xhi + geom::kEps)
      ++count;
  }

  double x_lo(int c) const { return origin + c * pitch; }
  double x_center(int c) const { return x_lo(c) + feature / 2; }

  /// Columns whose footprint intersects [lo, hi] (clamped to the grid).
  void overlapping(double lo, double hi, int& c0, int& c1) const {
    c0 = static_cast<int>(std::ceil((lo - feature - origin) / pitch +
                                    geom::kEps));
    c1 = static_cast<int>(std::floor((hi - origin) / pitch - geom::kEps));
    c0 = std::max(c0, 0);
    c1 = std::min(c1, count - 1);
  }

  /// Columns whose footprint lies fully inside [lo, hi].
  void inside(double lo, double hi, int& c0, int& c1) const {
    c0 = static_cast<int>(std::ceil((lo - origin) / pitch - geom::kEps));
    c1 = static_cast<int>(
        std::floor((hi - feature - origin) / pitch + geom::kEps));
    c0 = std::max(c0, 0);
    c1 = std::min(c1, count - 1);
  }
};

struct ColumnState {
  double start = 0.0;       ///< top edge of the previous boundary
  BoundKind kind = BoundKind::kDieEdge;
  int piece = -1;
};

/// Emit the gap between `below` and the boundary starting at `above_bottom`
/// as zero or more slack columns of site column `c` (one per free sub-run
/// left by the blockage intervals). Shared by the per-tile region scan and
/// the per-column global scan so both produce identical columns.
void emit_gap(const ColumnGrid& grid, int c, const ColumnState& below,
              BoundKind above_kind, int above_piece, double above_bottom,
              const geom::IntervalSet& blocked, const FillRules& rules,
              SlackMode mode, std::vector<SlackColumn>& out) {
  // Mode I keeps only gaps bounded by two active lines.
  if (mode == SlackMode::kI &&
      (below.kind != BoundKind::kLine || above_kind != BoundKind::kLine))
    return;
  const double b = rules.buffer_um;
  SlackColumn col;
  col.col_index = c;
  col.x_lo = grid.x_lo(c);
  col.x_center = grid.x_center(c);
  col.below = below.kind;
  col.below_piece = below.piece;
  col.above = above_kind;
  col.above_piece = above_piece;
  col.gap_um = above_bottom - below.start;
  const double usable_lo =
      below.start + (below.kind == BoundKind::kLine ? b : rules.gap_um / 2);
  const double usable_hi =
      above_bottom - (above_kind == BoundKind::kLine ? b : rules.gap_um / 2);
  if (usable_hi - usable_lo < rules.feature_um) return;
  // Vertical wires pierce the gap into sub-runs. Each sub-run becomes its
  // own column sharing the bounding lines and line distance (the series
  // parallel-plate model only sees the feature count in the gap).
  for (const Interval& free : blocked.gaps(Interval{usable_lo, usable_hi})) {
    col.span_lo = free.lo;
    col.span_hi = free.hi;
    col.capacity = rules.capacity_in_span(free.length());
    if (col.capacity > 0) out.push_back(col);
  }
}

/// Scan one rectangular region and append the slack columns found. Piece
/// rects are clipped to the region. `edge_kind` labels the region's own
/// y-boundaries. `blocked` holds, per global column, the y-intervals made
/// unusable by vertical wires (already buffer-inflated). Used by modes
/// I/II (per-tile regions); mode III goes through GlobalSlackScan.
void scan_region(const Rect& region, const ColumnGrid& grid,
                 const std::vector<std::pair<int, Rect>>& hpieces_sorted,
                 const std::vector<geom::IntervalSet>& blocked,
                 const FillRules& rules, SlackMode mode, BoundKind edge_kind,
                 std::vector<SlackColumn>& out) {
  int c_begin, c_end;
  grid.inside(region.xlo, region.xhi, c_begin, c_end);
  if (c_begin > c_end) return;

  std::vector<ColumnState> state(c_end - c_begin + 1);
  for (auto& s : state) {
    s.start = region.ylo;
    s.kind = edge_kind;
    s.piece = -1;
  }

  const double b = rules.buffer_um;

  for (const auto& [piece_idx, rect] : hpieces_sorted) {
    const Rect clipped = geom::intersect(rect, region);
    if (clipped.empty() || clipped.width() <= 0) continue;
    int c0, c1;
    grid.overlapping(clipped.xlo - b, clipped.xhi + b, c0, c1);
    c0 = std::max(c0, c_begin);
    c1 = std::min(c1, c_end);
    for (int c = c0; c <= c1; ++c) {
      ColumnState& s = state[c - c_begin];
      if (clipped.ylo > s.start + geom::kEps)
        emit_gap(grid, c, s, BoundKind::kLine, piece_idx, clipped.ylo,
                 blocked[c], rules, mode, out);
      if (clipped.yhi > s.start) {
        s.start = clipped.yhi;
        s.kind = BoundKind::kLine;
        s.piece = piece_idx;
      }
    }
  }
  for (int c = c_begin; c <= c_end; ++c) {
    const ColumnState& s = state[c - c_begin];
    if (region.yhi > s.start + geom::kEps)
      emit_gap(grid, c, s, edge_kind, -1, region.yhi, blocked[c], rules, mode,
               out);
  }
}

}  // namespace

const char* to_string(SlackMode m) {
  switch (m) {
    case SlackMode::kI: return "SlackColumn-I";
    case SlackMode::kII: return "SlackColumn-II";
    case SlackMode::kIII: return "SlackColumn-III";
  }
  return "?";
}

SlackColumns::SlackColumns(std::vector<SlackColumn> columns,
                           std::vector<std::vector<TileColumnPart>> tile_parts,
                           bool transposed)
    : columns_(std::move(columns)),
      tile_parts_(std::move(tile_parts)),
      transposed_(transposed) {}

geom::Rect SlackColumns::site_rect(const SlackColumn& col, int site,
                                   const FillRules& rules) const {
  const double y = col.site_y(site, rules);
  const geom::Rect r{col.x_lo, y, col.x_lo + rules.feature_um,
                     y + rules.feature_um};
  if (!transposed_) return r;
  return geom::Rect{r.ylo, r.xlo, r.yhi, r.xhi};
}

geom::Point SlackColumns::column_cross_point(
    const SlackColumn& col, const rctree::WirePiece& piece) const {
  // In the scan frame the column sits at cross coordinate x_center; project
  // it onto the line in real coordinates.
  return transposed_ ? geom::Point{piece.up.x, col.x_center}
                     : geom::Point{col.x_center, piece.up.y};
}

const std::vector<TileColumnPart>& SlackColumns::tile_parts(
    int tile_flat) const {
  PIL_REQUIRE(tile_flat >= 0 && tile_flat < num_tiles(),
              "tile index out of range");
  return tile_parts_[tile_flat];
}

int SlackColumns::tile_capacity(int tile_flat) const {
  int sum = 0;
  for (const auto& part : tile_parts(tile_flat)) sum += part.num_sites;
  return sum;
}

long long SlackColumns::total_capacity() const {
  long long sum = 0;
  for (const auto& parts : tile_parts_)
    for (const auto& part : parts) sum += part.num_sites;
  return sum;
}

std::vector<rctree::WirePiece> flatten_pieces(
    const std::vector<rctree::RcTree>& trees) {
  std::vector<WirePiece> out;
  std::size_t total = 0;
  for (const auto& t : trees) total += t.pieces().size();
  out.reserve(total);
  for (const auto& t : trees)
    out.insert(out.end(), t.pieces().begin(), t.pieces().end());
  return out;
}

/// One x-site-column's scan state: its columns in ascending-y order plus
/// the tile split of every column. Column references inside parts are
/// ordinals into `cols`; flat indices are assigned at snapshot time.
struct GlobalSlackScan::Impl {
  struct Part {
    int tile_flat;  ///< real (dissection-frame) flat tile id
    int col_ordinal;
    int first_site;
    int num_sites;
  };
  struct XcolGroup {
    std::vector<SlackColumn> cols;
    std::vector<Part> parts;
  };

  const grid::Dissection* dissection;  // real frame
  layout::LayerId layer;
  FillRules rules;
  bool transposed = false;
  Rect die;                  // scan frame
  grid::Dissection scan_dis; // scan frame
  ColumnGrid grid;
  int c_begin = 0, c_end = -1;  // site columns fully inside the die
  Orientation routing_dir = Orientation::kHorizontal;
  /// Blockage-only intervals per global column (blockages are not part of
  /// the edit model, so these never change after construction).
  std::vector<geom::IntervalSet> blocked_static;
  std::vector<XcolGroup> groups;  // index g = column - c_begin
  std::vector<int> offsets;       // flat column offset per group (+1 total)
  std::vector<std::int32_t> row_scratch;  // site_rows kernel output buffer

  Impl(const layout::Layout& layout, const grid::Dissection& dis,
       layout::LayerId layer_in, const FillRules& rules_in)
      : dissection(&dis),
        layer(layer_in),
        rules(rules_in),
        transposed(layout.layer(layer_in).preferred_direction ==
                   Orientation::kVertical),
        die(xf(layout.die())),
        scan_dis(transposed
                     ? grid::Dissection(die, dis.window_um(), dis.r())
                     : dis),
        grid(die, rules_in) {
    rules.validate();
    routing_dir = transposed ? Orientation::kVertical
                             : Orientation::kHorizontal;
    grid.inside(die.xlo, die.xhi, c_begin, c_end);
    const int n = num_xcols();
    blocked_static.assign(grid.count, {});
    const double b = rules.buffer_um;
    for (const Rect& v0 : layout.blockages_on_layer(layer)) {
      const Rect v = xf(v0);
      int c0, c1;
      grid.overlapping(v.xlo - b, v.xhi + b, c0, c1);
      for (int c = c0; c <= c1; ++c)
        blocked_static[c].insert(v.ylo - b, v.yhi + b);
    }
    groups.assign(n, {});
    offsets.assign(n + 1, 0);
  }

  Rect xf(const Rect& r) const {
    return transposed ? Rect{r.ylo, r.xlo, r.yhi, r.xhi} : r;
  }
  int num_xcols() const { return c_begin > c_end ? 0 : c_end - c_begin + 1; }

  int real_flat(int scan_flat) const {
    if (!transposed) return scan_flat;
    const grid::TileIndex t = scan_dis.tile_unflat(scan_flat);
    return dissection->tile_flat(grid::TileIndex{t.iy, t.ix});
  }

  /// Sort key of a routing-direction piece: (scan-frame ylo, net, index).
  /// The net/index tie-break keeps the processing order -- and therefore
  /// which of two co-track pieces bounds a gap -- stable when edits to one
  /// net renumber the flattened piece array of the others.
  static bool piece_before(double ylo_a, const WirePiece& a, int ia,
                           double ylo_b, const WirePiece& b, int ib) {
    if (ylo_a != ylo_b) return ylo_a < ylo_b;
    if (a.net != b.net) return a.net < b.net;
    return ia < ib;
  }

  /// Run the column state machine for site column `c` over `pidx` (piece
  /// indices sorted by piece_before) and recompute the group's tile parts.
  void scan_one_column(int c, const std::vector<int>& pidx,
                       const std::vector<WirePiece>& pieces,
                       const geom::IntervalSet& blocked, XcolGroup& out) {
    out.cols.clear();
    out.parts.clear();
    const double b = rules.buffer_um;
    ColumnState s;
    s.start = die.ylo;
    s.kind = BoundKind::kDieEdge;
    s.piece = -1;
    for (const int idx : pidx) {
      const Rect clipped = geom::intersect(xf(pieces[idx].rect()), die);
      if (clipped.empty() || clipped.width() <= 0) continue;
      int c0, c1;
      grid.overlapping(clipped.xlo - b, clipped.xhi + b, c0, c1);
      if (c < c0 || c > c1) continue;
      if (clipped.ylo > s.start + geom::kEps)
        emit_gap(grid, c, s, BoundKind::kLine, idx, clipped.ylo, blocked,
                 rules, SlackMode::kIII, out.cols);
      if (clipped.yhi > s.start) {
        s.start = clipped.yhi;
        s.kind = BoundKind::kLine;
        s.piece = idx;
      }
    }
    if (die.yhi > s.start + geom::kEps)
      emit_gap(grid, c, s, BoundKind::kDieEdge, -1, die.yhi, blocked, rules,
               SlackMode::kIII, out.cols);

    // Split each column's site stack across the tile rows it crosses. The
    // per-site dissection rows come from one site_rows kernel call per
    // column (the column's x -- and so its tile column -- is fixed, only
    // the row varies); run-length encoding the rows reproduces the
    // per-site tile_at() walk exactly.
    const simd::Kernels& K = simd::kernels();
    for (std::size_t ci = 0; ci < out.cols.size(); ++ci) {
      const SlackColumn& col = out.cols[ci];
      if (col.capacity <= 0) continue;
      row_scratch.resize(static_cast<std::size_t>(col.capacity));
      K.site_rows(col.capacity, col.span_lo, rules.pitch(),
                  rules.feature_um / 2, scan_dis.die().ylo,
                  scan_dis.tile_um(), scan_dis.tiles_y() - 1,
                  row_scratch.data());
      const int ix =
          scan_dis
              .tile_at(geom::Point{col.x_center,
                                   col.site_y(0, rules) +
                                       rules.feature_um / 2})
              .ix;
      int run_first = 0;
      int run_row = -1;
      for (int i = 0; i < col.capacity; ++i) {
        if (row_scratch[static_cast<std::size_t>(i)] != run_row) {
          if (run_row >= 0)
            out.parts.push_back(
                Part{real_flat(scan_dis.tile_flat(grid::TileIndex{ix, run_row})),
                     static_cast<int>(ci), run_first, i - run_first});
          run_row = row_scratch[static_cast<std::size_t>(i)];
          run_first = i;
        }
      }
      out.parts.push_back(
          Part{real_flat(scan_dis.tile_flat(grid::TileIndex{ix, run_row})),
               static_cast<int>(ci), run_first, col.capacity - run_first});
    }
  }

  /// Bucket routing-direction pieces into the marked columns (all when
  /// `mark` is null) and collect blockage intervals from cross-direction
  /// pieces. Buckets come out sorted by piece_before.
  void bucket_pieces(const std::vector<WirePiece>& pieces,
                     const std::vector<char>* mark,
                     std::vector<std::vector<int>>& hbucket,
                     std::vector<geom::IntervalSet>& blocked) {
    const double b = rules.buffer_um;
    std::vector<double> key_ylo(pieces.size(), 0.0);
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      if (pieces[i].layer != layer) continue;
      const Rect r = xf(pieces[i].rect());
      key_ylo[i] = r.ylo;
      int c0, c1;
      if (pieces[i].orientation == routing_dir) {
        const Rect clipped = geom::intersect(r, die);
        if (clipped.empty() || clipped.width() <= 0) continue;
        grid.overlapping(clipped.xlo - b, clipped.xhi + b, c0, c1);
        c0 = std::max(c0, c_begin);
        c1 = std::min(c1, c_end);
        for (int c = c0; c <= c1; ++c) {
          const int g = c - c_begin;
          if (!mark || (*mark)[g]) hbucket[g].push_back(static_cast<int>(i));
        }
      } else {
        grid.overlapping(r.xlo - b, r.xhi + b, c0, c1);
        for (int c = std::max(c0, c_begin); c <= std::min(c1, c_end); ++c) {
          const int g = c - c_begin;
          if (!mark || (*mark)[g])
            blocked[g].insert(r.ylo - b, r.yhi + b);
        }
      }
    }
    auto cmp = [&](int a, int b2) {
      return piece_before(key_ylo[a], pieces[a], a, key_ylo[b2], pieces[b2],
                          b2);
    };
    for (int g = 0; g < num_xcols(); ++g)
      if (!mark || (*mark)[g])
        std::sort(hbucket[g].begin(), hbucket[g].end(), cmp);
  }

  void refresh_offsets() {
    offsets.assign(num_xcols() + 1, 0);
    for (int g = 0; g < num_xcols(); ++g)
      offsets[g + 1] = offsets[g] + static_cast<int>(groups[g].cols.size());
  }
};

GlobalSlackScan::GlobalSlackScan(const layout::Layout& layout,
                                 const grid::Dissection& dissection,
                                 layout::LayerId layer, const FillRules& rules)
    : impl_(std::make_unique<Impl>(layout, dissection, layer, rules)) {}

GlobalSlackScan::~GlobalSlackScan() = default;
GlobalSlackScan::GlobalSlackScan(GlobalSlackScan&&) noexcept = default;
GlobalSlackScan& GlobalSlackScan::operator=(GlobalSlackScan&&) noexcept =
    default;

void GlobalSlackScan::build(const std::vector<rctree::WirePiece>& pieces) {
  Impl& im = *impl_;
  const int n = im.num_xcols();
  std::vector<std::vector<int>> hbucket(n);
  std::vector<geom::IntervalSet> blocked(n);
  for (int g = 0; g < n; ++g) blocked[g] = im.blocked_static[im.c_begin + g];
  im.bucket_pieces(pieces, nullptr, hbucket, blocked);
  for (int g = 0; g < n; ++g)
    im.scan_one_column(im.c_begin + g, hbucket[g], pieces, blocked[g],
                       im.groups[g]);
  im.refresh_offsets();
}

GlobalSlackScan::RescanResult GlobalSlackScan::rescan(
    const std::vector<rctree::WirePiece>& pieces,
    const std::vector<geom::Rect>& changed_real) {
  Impl& im = *impl_;
  const int n = im.num_xcols();
  const double b = im.rules.buffer_um;
  RescanResult res;

  std::vector<char> mark(n, 0);
  for (const Rect& r0 : changed_real) {
    const Rect r = im.xf(r0);
    int c0, c1;
    im.grid.overlapping(r.xlo - b, r.xhi + b, c0, c1);
    for (int c = std::max(c0, im.c_begin); c <= std::min(c1, im.c_end); ++c)
      mark[c - im.c_begin] = 1;
  }

  std::vector<int> touched;
  std::vector<std::vector<int>> hbucket(n);
  std::vector<geom::IntervalSet> blocked(n);
  for (int g = 0; g < n; ++g) {
    if (!mark[g]) continue;
    ++res.xcols_rescanned;
    blocked[g] = im.blocked_static[im.c_begin + g];
    for (const Impl::Part& p : im.groups[g].parts)
      touched.push_back(p.tile_flat);
  }
  im.bucket_pieces(pieces, &mark, hbucket, blocked);

  const std::vector<int> old_offsets = im.offsets;
  for (int g = 0; g < n; ++g) {
    if (!mark[g]) continue;
    im.scan_one_column(im.c_begin + g, hbucket[g], pieces, blocked[g],
                       im.groups[g]);
    for (const Impl::Part& p : im.groups[g].parts)
      touched.push_back(p.tile_flat);
  }
  im.refresh_offsets();

  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  res.touched_tiles = std::move(touched);

  res.column_remap.assign(old_offsets.back(), -1);
  for (int g = 0; g < n; ++g) {
    if (mark[g]) continue;
    const int delta = im.offsets[g] - old_offsets[g];
    for (int f = old_offsets[g]; f < old_offsets[g + 1]; ++f)
      res.column_remap[f] = f + delta;
  }
  return res;
}

void GlobalSlackScan::shift_piece_indices(int first_old_index, int delta) {
  if (delta == 0) return;
  for (auto& g : impl_->groups)
    for (SlackColumn& col : g.cols) {
      if (col.below_piece >= first_old_index) col.below_piece += delta;
      if (col.above_piece >= first_old_index) col.above_piece += delta;
    }
}

SlackColumns GlobalSlackScan::snapshot() const {
  const Impl& im = *impl_;
  std::vector<SlackColumn> columns;
  columns.reserve(im.offsets.empty() ? 0 : im.offsets.back());
  std::vector<std::vector<TileColumnPart>> tile_parts(
      im.dissection->num_tiles());
  for (int g = 0; g < im.num_xcols(); ++g) {
    const Impl::XcolGroup& grp = im.groups[g];
    columns.insert(columns.end(), grp.cols.begin(), grp.cols.end());
    for (const Impl::Part& p : grp.parts)
      tile_parts[p.tile_flat].push_back(TileColumnPart{
          im.offsets[g] + p.col_ordinal, p.first_site, p.num_sites});
  }
  return SlackColumns(std::move(columns), std::move(tile_parts),
                      im.transposed);
}

int GlobalSlackScan::num_columns() const {
  return impl_->offsets.empty() ? 0 : impl_->offsets.back();
}

SlackColumns extract_slack_columns(const layout::Layout& layout,
                                   const grid::Dissection& dissection,
                                   const std::vector<WirePiece>& pieces,
                                   layout::LayerId layer,
                                   const FillRules& rules, SlackMode mode) {
  rules.validate();
  if (mode == SlackMode::kIII) {
    // Mode III is the per-column scan; going through GlobalSlackScan keeps
    // full and incremental extraction on one code path (bit-identical).
    GlobalSlackScan scan(layout, dissection, layer, rules);
    scan.build(pieces);
    SlackColumns out = scan.snapshot();
    PIL_INFO(to_string(mode) << ": " << out.columns().size()
                             << " slack columns");
    return out;
  }
  // Vertical-preference layers are scanned in a transposed frame where the
  // routing direction is horizontal; only geometry is swapped -- tile part
  // indices are mapped back to the real dissection at the end.
  const bool transposed = layout.layer(layer).preferred_direction ==
                          layout::Orientation::kVertical;
  auto xf = [&](const Rect& r) {
    return transposed ? Rect{r.ylo, r.xlo, r.yhi, r.xhi} : r;
  };
  const Rect die = xf(layout.die());
  const grid::Dissection scan_dis =
      transposed ? grid::Dissection(die, dissection.window_um(),
                                    dissection.r())
                 : dissection;
  // Real flat tile index for a scan-frame flat index.
  auto real_flat = [&](int scan_flat) {
    if (!transposed) return scan_flat;
    const grid::TileIndex t = scan_dis.tile_unflat(scan_flat);
    return dissection.tile_flat(grid::TileIndex{t.iy, t.ix});
  };

  const ColumnGrid grid(die, rules);
  const double b = rules.buffer_um;

  // Partition pieces on the layer: routing-direction pieces are the active
  // lines; cross-direction pieces only block. Rects live in the scan frame.
  const Orientation routing_dir =
      transposed ? Orientation::kVertical : Orientation::kHorizontal;
  std::vector<std::pair<int, Rect>> hpieces;
  std::vector<Rect> vpieces;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (pieces[i].layer != layer) continue;
    if (pieces[i].orientation == routing_dir)
      hpieces.emplace_back(static_cast<int>(i), xf(pieces[i].rect()));
    else
      vpieces.push_back(xf(pieces[i].rect()));
  }
  // Tie-break equal scan positions by (net, index) so the processing order
  // is invariant under piece renumbering (see GlobalSlackScan::piece_before).
  std::sort(hpieces.begin(), hpieces.end(),
            [&](const auto& a, const auto& b2) {
              if (a.second.ylo != b2.second.ylo)
                return a.second.ylo < b2.second.ylo;
              if (pieces[a.first].net != pieces[b2.first].net)
                return pieces[a.first].net < pieces[b2.first].net;
              return a.first < b2.first;
            });

  // Per-column blockage intervals (buffer-inflated in both directions):
  // wrong-direction wires and explicit fill blockages both pierce gaps.
  std::vector<geom::IntervalSet> blocked(grid.count);
  auto block_rect = [&](const Rect& v) {
    int c0, c1;
    grid.overlapping(v.xlo - b, v.xhi + b, c0, c1);
    for (int c = c0; c <= c1; ++c) blocked[c].insert(v.ylo - b, v.yhi + b);
  };
  for (const Rect& v : vpieces) block_rect(v);
  for (const Rect& v : layout.blockages_on_layer(layer)) block_rect(xf(v));

  std::vector<SlackColumn> columns;
  std::vector<std::vector<TileColumnPart>> tile_parts(dissection.num_tiles());

  // Modes I/II: independent scan per tile; each column is one part.
  for (int scan_flat = 0; scan_flat < scan_dis.num_tiles(); ++scan_flat) {
    const Rect tile = scan_dis.tile_rect(scan_dis.tile_unflat(scan_flat));
    const std::size_t before = columns.size();
    // Clip the piece set to those overlapping the tile (x-inflated so a
    // line just outside the tile in x does not bound columns -- per the
    // paper, only lines *intersecting* the tile are scanned).
    std::vector<std::pair<int, Rect>> local;
    for (const auto& [idx, rect] : hpieces)
      if (geom::overlaps_strictly(rect, tile)) local.emplace_back(idx, rect);
    scan_region(tile, grid, local, blocked, rules, mode,
                BoundKind::kTileEdge, columns);
    for (std::size_t ci = before; ci < columns.size(); ++ci)
      tile_parts[real_flat(scan_flat)].push_back(TileColumnPart{
          static_cast<int>(ci), 0, columns[ci].capacity});
  }

  PIL_INFO(to_string(mode) << ": " << columns.size() << " slack columns");
  return SlackColumns(std::move(columns), std::move(tile_parts), transposed);
}

}  // namespace pil::fill
