#include "pil/fill/checker.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "pil/grid/density_map.hpp"

namespace pil::fill {

namespace {

/// Axis-aligned rect-to-rect gap (0 when overlapping/touching).
double rect_gap(const geom::Rect& a, const geom::Rect& b) {
  const double dx = std::max({a.xlo - b.xhi, b.xlo - a.xhi, 0.0});
  const double dy = std::max({a.ylo - b.yhi, b.ylo - a.yhi, 0.0});
  // Rectilinear rules measure spacing per axis; use the max-norm gap so a
  // diagonal neighbor at (g, g) counts as gap g.
  return std::max(dx, dy);
}

/// Uniform-grid spatial hash over rectangle indices.
class BucketGrid {
 public:
  BucketGrid(const geom::Rect& extent, double cell)
      : x0_(extent.xlo), y0_(extent.ylo), cell_(cell) {}

  void insert(int id, const geom::Rect& r) {
    visit_cells(r, [&](long long key) { cells_[key].push_back(id); });
  }

  /// Visit candidate ids whose cells intersect r (may repeat ids).
  template <typename F>
  void candidates(const geom::Rect& r, F&& fn) const {
    visit_cells(r, [&](long long key) {
      const auto it = cells_.find(key);
      if (it == cells_.end()) return;
      for (const int id : it->second) fn(id);
    });
  }

 private:
  template <typename F>
  void visit_cells(const geom::Rect& r, F&& fn) const {
    const int cx0 = static_cast<int>(std::floor((r.xlo - x0_) / cell_));
    const int cx1 = static_cast<int>(std::floor((r.xhi - x0_) / cell_));
    const int cy0 = static_cast<int>(std::floor((r.ylo - y0_) / cell_));
    const int cy1 = static_cast<int>(std::floor((r.yhi - y0_) / cell_));
    for (int cy = cy0; cy <= cy1; ++cy)
      for (int cx = cx0; cx <= cx1; ++cx)
        fn((static_cast<long long>(cy) << 32) ^
           static_cast<long long>(static_cast<unsigned>(cx)));
  }

  double x0_, y0_, cell_;
  std::unordered_map<long long, std::vector<int>> cells_;
};

}  // namespace

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kOutsideDie: return "outside-die";
    case ViolationKind::kBufferToWire: return "buffer-to-wire";
    case ViolationKind::kFillSpacing: return "fill-spacing";
    case ViolationKind::kNotSquare: return "not-square";
    case ViolationKind::kDensityOverCap: return "density-over-cap";
    case ViolationKind::kInsideBlockage: return "inside-blockage";
  }
  return "?";
}

std::string Violation::describe() const {
  std::ostringstream os;
  os << to_string(kind) << " at " << a;
  if (!b.empty()) os << " vs " << b;
  os << " (measure " << measure << ")";
  return os.str();
}

CheckReport check_fill(const layout::Layout& layout,
                       const std::vector<geom::Rect>& features,
                       const CheckOptions& options,
                       const grid::Dissection* dissection) {
  options.rules.validate();
  CheckReport report;
  auto add = [&](Violation v) {
    if (report.violations.size() < options.max_violations)
      report.violations.push_back(std::move(v));
  };

  const double f = options.rules.feature_um;
  const double buf = options.rules.buffer_um;
  const double gap = options.rules.gap_um;
  const geom::Rect die = layout.die();
  const double cell = std::max(4 * options.rules.pitch(), 2.0);

  // Wires on the layer, bucketed with the buffer margin.
  BucketGrid wires(die, cell);
  std::vector<geom::Rect> wire_rects;
  for (const auto& seg : layout.segments()) {
    if (seg.layer != options.layer) continue;
    wires.insert(static_cast<int>(wire_rects.size()), seg.rect().inflated(buf));
    wire_rects.push_back(seg.rect());
  }

  const std::vector<geom::Rect> keepouts =
      layout.blockages_on_layer(options.layer);

  BucketGrid fills(die, cell);
  for (std::size_t i = 0; i < features.size(); ++i)
    fills.insert(static_cast<int>(i), features[i]);

  for (std::size_t i = 0; i < features.size(); ++i) {
    const geom::Rect& r = features[i];
    ++report.features_checked;

    if (!die.contains(r))
      add({ViolationKind::kOutsideDie, r, {}, 0.0});
    if (!geom::nearly_equal(r.width(), f, 1e-9) ||
        !geom::nearly_equal(r.height(), f, 1e-9))
      add({ViolationKind::kNotSquare, r, {}, r.width()});

    for (const geom::Rect& ko : keepouts) {
      const double g = rect_gap(r, ko);
      if (g < buf - 1e-9) add({ViolationKind::kInsideBlockage, r, ko, g});
    }

    // Bucket visits can repeat an id (one rect, many cells): dedupe.
    std::vector<int> seen;
    auto once = [&](int id) {
      if (std::find(seen.begin(), seen.end(), id) != seen.end()) return false;
      seen.push_back(id);
      return true;
    };

    wires.candidates(r.inflated(buf), [&](int w) {
      if (!once(w)) return;
      const double g = rect_gap(r, wire_rects[w]);
      if (g < buf - 1e-9)
        add({ViolationKind::kBufferToWire, r, wire_rects[w], g});
    });

    seen.clear();
    fills.candidates(r.inflated(gap), [&](int j) {
      if (static_cast<std::size_t>(j) <= i || !once(j)) return;
      const double g = rect_gap(r, features[j]);
      if (g < gap - 1e-9)
        add({ViolationKind::kFillSpacing, r, features[j], g});
    });
  }

  if (options.max_window_density >= 0) {
    PIL_REQUIRE(dissection != nullptr,
                "density check needs the dissection");
    grid::DensityMap density(*dissection);
    density.add_layer_wires(layout, options.layer);
    for (const auto& r : features) density.add_rect(r);
    for (int wy = 0; wy < dissection->windows_y(); ++wy) {
      for (int wx = 0; wx < dissection->windows_x(); ++wx) {
        const double d = density.window_density(wx, wy);
        if (d > options.max_window_density + 1e-9)
          add({ViolationKind::kDensityOverCap,
               dissection->window_rect(wx, wy),
               {},
               d});
      }
    }
  }
  return report;
}

}  // namespace pil::fill
