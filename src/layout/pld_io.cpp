#include "pil/layout/pld_io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "pil/util/strings.hpp"

namespace pil::layout {

namespace {

[[noreturn]] void fail(int lineno, const std::string& what) {
  std::ostringstream os;
  os << "pld parse error at line " << lineno << ": " << what;
  throw Error(os.str());
}

}  // namespace

Layout read_pld(std::istream& in) {
  Layout layout;
  bool saw_magic = false;
  bool saw_die = false;
  NetId current_net = kInvalidNet;
  std::string line;
  int lineno = 0;

  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto tokens = split_ws(line);
    if (tokens.empty()) continue;
    const std::string& kw = tokens[0];

    if (kw == "PLD") {
      if (tokens.size() != 2 || parse_int(tokens[1], "PLD version") != 1)
        fail(lineno, "expected 'PLD 1'");
      saw_magic = true;
    } else if (!saw_magic) {
      fail(lineno, "file must start with 'PLD 1'");
    } else if (kw == "DIE") {
      if (tokens.size() != 5) fail(lineno, "DIE needs 4 coordinates");
      layout.set_die(geom::Rect{
          parse_double(tokens[1], "DIE"), parse_double(tokens[2], "DIE"),
          parse_double(tokens[3], "DIE"), parse_double(tokens[4], "DIE")});
      saw_die = true;
    } else if (kw == "LAYER") {
      if (tokens.size() != 11 || tokens[3] != "WIDTH" ||
          tokens[5] != "SHEETRES" || tokens[7] != "THICKNESS" ||
          tokens[9] != "EPSR")
        fail(lineno,
             "expected LAYER <name> <H|V> WIDTH w SHEETRES r THICKNESS t "
             "EPSR e");
      Layer layer;
      layer.name = tokens[1];
      if (tokens[2] == "H")
        layer.preferred_direction = Orientation::kHorizontal;
      else if (tokens[2] == "V")
        layer.preferred_direction = Orientation::kVertical;
      else
        fail(lineno, "layer direction must be H or V");
      layer.default_wire_width_um = parse_double(tokens[4], "LAYER WIDTH");
      layer.sheet_res_ohm_sq = parse_double(tokens[6], "LAYER SHEETRES");
      layer.thickness_um = parse_double(tokens[8], "LAYER THICKNESS");
      layer.eps_r = parse_double(tokens[10], "LAYER EPSR");
      layout.add_layer(std::move(layer));
    } else if (kw == "BLOCKAGE") {
      if (!saw_die) fail(lineno, "BLOCKAGE before DIE");
      if (tokens.size() != 6 && !(tokens.size() == 7 && tokens[6] == "METAL"))
        fail(lineno, "expected BLOCKAGE <layer> x0 y0 x1 y1 [METAL]");
      const LayerId lid = layout.find_layer(tokens[1]);
      if (lid == kInvalidLayer) fail(lineno, "BLOCKAGE on unknown layer");
      layout.add_blockage(
          lid,
          geom::Rect{parse_double(tokens[2], "BLOCKAGE"),
                     parse_double(tokens[3], "BLOCKAGE"),
                     parse_double(tokens[4], "BLOCKAGE"),
                     parse_double(tokens[5], "BLOCKAGE")},
          tokens.size() == 7);
    } else if (kw == "NET") {
      if (!saw_die) fail(lineno, "NET before DIE");
      if (current_net != kInvalidNet) fail(lineno, "nested NET (missing END)");
      if (tokens.size() != 7 || tokens[2] != "SOURCE" || tokens[5] != "RDRV")
        fail(lineno, "expected NET <name> SOURCE x y RDRV r");
      Net net;
      net.name = tokens[1];
      net.source = geom::Point{parse_double(tokens[3], "NET SOURCE"),
                               parse_double(tokens[4], "NET SOURCE")};
      net.driver_res_ohm = parse_double(tokens[6], "NET RDRV");
      current_net = layout.add_net(std::move(net));
    } else if (kw == "SEG") {
      if (current_net == kInvalidNet) fail(lineno, "SEG outside NET");
      if (tokens.size() != 7) fail(lineno, "expected SEG layer x0 y0 x1 y1 w");
      const LayerId lid = layout.find_layer(tokens[1]);
      if (lid == kInvalidLayer) fail(lineno, "SEG on unknown layer");
      layout.add_segment(
          current_net, lid,
          geom::Point{parse_double(tokens[2], "SEG"), parse_double(tokens[3], "SEG")},
          geom::Point{parse_double(tokens[4], "SEG"), parse_double(tokens[5], "SEG")},
          parse_double(tokens[6], "SEG width"));
    } else if (kw == "SINK") {
      if (current_net == kInvalidNet) fail(lineno, "SINK outside NET");
      if (tokens.size() != 5 || tokens[3] != "CLOAD")
        fail(lineno, "expected SINK x y CLOAD c");
      SinkPin sink;
      sink.location = geom::Point{parse_double(tokens[1], "SINK"),
                                  parse_double(tokens[2], "SINK")};
      sink.load_cap_ff = parse_double(tokens[4], "SINK CLOAD");
      layout.mutable_net(current_net).sinks.push_back(sink);
    } else if (kw == "END") {
      if (current_net == kInvalidNet) fail(lineno, "END outside NET");
      current_net = kInvalidNet;
    } else {
      fail(lineno, "unknown keyword '" + kw + "'");
    }
  }
  if (current_net != kInvalidNet) throw Error("pld: unterminated NET at EOF");
  if (!saw_die) throw Error("pld: missing DIE statement");
  layout.validate();
  return layout;
}

Layout read_pld_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open pld file: " + path);
  return read_pld(in);
}

void write_pld(const Layout& layout, std::ostream& out) {
  // Coordinates print via the shortest exact decimal representation so a
  // write/read cycle reproduces the layout bit-for-bit -- the fill service
  // ships layouts as .pld text and promises solves identical to an
  // in-process session on the original.
  const auto d = [](double v) { return format_double_exact(v); };
  out << "PLD 1\n";
  const auto& die = layout.die();
  out << "DIE " << d(die.xlo) << ' ' << d(die.ylo) << ' ' << d(die.xhi) << ' '
      << d(die.yhi) << '\n';
  for (std::size_t i = 0; i < layout.num_layers(); ++i) {
    const Layer& l = layout.layer(static_cast<LayerId>(i));
    out << "LAYER " << l.name << ' '
        << (l.preferred_direction == Orientation::kHorizontal ? 'H' : 'V')
        << " WIDTH " << d(l.default_wire_width_um) << " SHEETRES "
        << d(l.sheet_res_ohm_sq) << " THICKNESS " << d(l.thickness_um)
        << " EPSR " << d(l.eps_r) << '\n';
  }
  for (const Blockage& b : layout.blockages()) {
    out << "BLOCKAGE " << layout.layer(b.layer).name << ' ' << d(b.rect.xlo)
        << ' ' << d(b.rect.ylo) << ' ' << d(b.rect.xhi) << ' ' << d(b.rect.yhi)
        << (b.is_metal ? " METAL" : "") << '\n';
  }
  for (std::size_t i = 0; i < layout.num_nets(); ++i) {
    const Net& n = layout.net(static_cast<NetId>(i));
    out << "NET " << n.name << " SOURCE " << d(n.source.x) << ' '
        << d(n.source.y) << " RDRV " << d(n.driver_res_ohm) << '\n';
    for (const SegmentId sid : n.segments) {
      const WireSegment& s = layout.segment(sid);
      out << "  SEG " << layout.layer(s.layer).name << ' ' << d(s.a.x) << ' '
          << d(s.a.y) << ' ' << d(s.b.x) << ' ' << d(s.b.y) << ' '
          << d(s.width_um) << '\n';
    }
    for (const SinkPin& s : n.sinks) {
      out << "  SINK " << d(s.location.x) << ' ' << d(s.location.y)
          << " CLOAD " << d(s.load_cap_ff) << '\n';
    }
    out << "END\n";
  }
}

void write_pld_file(const Layout& layout, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open pld file for writing: " + path);
  write_pld(layout, out);
}

}  // namespace pil::layout
