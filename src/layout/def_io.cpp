#include "pil/layout/def_io.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "pil/util/log.hpp"
#include "pil/util/strings.hpp"

namespace pil::layout {

namespace {

/// Whitespace tokenizer with one-token lookahead and positional errors.
class TokenStream {
 public:
  explicit TokenStream(std::istream& in) {
    std::string tok;
    while (in >> tok) tokens_.push_back(tok);
  }

  bool eof() const { return pos_ >= tokens_.size(); }

  const std::string& peek() const {
    PIL_REQUIRE(!eof(), "unexpected end of DEF file");
    return tokens_[pos_];
  }

  std::string next() {
    PIL_REQUIRE(!eof(), "unexpected end of DEF file");
    return tokens_[pos_++];
  }

  void expect(const std::string& want) {
    const std::string got = next();
    if (got != want)
      fail("expected '" + want + "', got '" + got + "'");
  }

  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream os;
    os << "DEF parse error near token #" << pos_ << ": " << what;
    throw Error(os.str());
  }

  /// Skip tokens until (and including) the next ';'.
  void skip_statement() {
    while (next() != ";") {
    }
  }

  /// Skip a `SECTION ... END SECTION` block (cursor just after the name).
  void skip_section(const std::string& name) {
    while (true) {
      const std::string tok = next();
      if (tok == "END" && !eof() && peek() == name) {
        next();
        return;
      }
    }
  }

 private:
  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
};

struct RawPoint {
  double x = 0, y = 0;
};

}  // namespace

Layout read_def(std::istream& in, const DefReadOptions& options) {
  PIL_REQUIRE(!options.layers.empty(), "DEF reader needs layer definitions");
  TokenStream ts(in);

  double dbu = 1000.0;  // database units per micron
  std::optional<geom::Rect> die;
  std::string design_name;

  // Net wiring gathered before Layout construction (we need DIEAREA first,
  // and it may legally appear after NETS in weird writers -- we tolerate
  // only the normal order and check below).
  struct RawSegment {
    std::string layer;
    RawPoint a, b;
  };
  struct RawNet {
    std::string name;
    std::vector<RawSegment> segments;
    std::optional<RawPoint> first_point;
  };
  std::vector<RawNet> nets;

  auto to_um = [&](double v) { return v / dbu; };

  while (!ts.eof()) {
    const std::string tok = ts.next();
    if (tok == "VERSION" || tok == "DIVIDERCHAR" || tok == "BUSBITCHARS" ||
        tok == "TECHNOLOGY" || tok == "HISTORY") {
      ts.skip_statement();
    } else if (tok == "DESIGN") {
      design_name = ts.next();
      ts.expect(";");
    } else if (tok == "UNITS") {
      ts.expect("DISTANCE");
      ts.expect("MICRONS");
      dbu = parse_double(ts.next(), "UNITS MICRONS");
      PIL_REQUIRE(dbu > 0, "UNITS MICRONS must be positive");
      ts.expect(";");
    } else if (tok == "DIEAREA") {
      ts.expect("(");
      const double x0 = parse_double(ts.next(), "DIEAREA");
      const double y0 = parse_double(ts.next(), "DIEAREA");
      ts.expect(")");
      ts.expect("(");
      const double x1 = parse_double(ts.next(), "DIEAREA");
      const double y1 = parse_double(ts.next(), "DIEAREA");
      ts.expect(")");
      ts.expect(";");
      die = geom::Rect{to_um(std::min(x0, x1)), to_um(std::min(y0, y1)),
                       to_um(std::max(x0, x1)), to_um(std::max(y0, y1))};
    } else if (tok == "NETS") {
      ts.next();  // count (advisory)
      ts.expect(";");
      while (ts.peek() != "END") {
        ts.expect("-");
        RawNet net;
        net.name = ts.next();
        // Connection pairs `( comp pin )` and options until ROUTED or ';'.
        while (true) {
          const std::string t = ts.next();
          if (t == ";") break;
          if (t == "(") {
            ts.next();  // component
            ts.next();  // pin
            ts.expect(")");
            continue;
          }
          if (t == "+") {
            const std::string kind = ts.next();
            if (kind == "ROUTED" || kind == "FIXED" || kind == "COVER") {
              // One or more paths separated by NEW.
              while (true) {
                const std::string layer_name = ts.next();
                std::optional<RawPoint> prev;
                // Points and via names until NEW / '+' / ';'.
                while (true) {
                  const std::string& p = ts.peek();
                  if (p == "NEW" || p == "+" || p == ";") break;
                  if (p == "(") {
                    ts.next();
                    RawPoint pt;
                    const std::string xs = ts.next();
                    const std::string ys = ts.next();
                    if (xs == "*") {
                      if (!prev) ts.fail("'*' with no previous x");
                      pt.x = prev->x;
                    } else {
                      pt.x = to_um(parse_double(xs, "wire point"));
                    }
                    if (ys == "*") {
                      if (!prev) ts.fail("'*' with no previous y");
                      pt.y = prev->y;
                    } else {
                      pt.y = to_um(parse_double(ys, "wire point"));
                    }
                    // Optional extension value before ')'.
                    if (ts.peek() != ")") ts.next();
                    ts.expect(")");
                    if (!net.first_point) net.first_point = pt;
                    if (prev && (prev->x != pt.x || prev->y != pt.y)) {
                      net.segments.push_back(RawSegment{layer_name, *prev, pt});
                    }
                    prev = pt;
                  } else {
                    ts.next();  // via name or taper keyword: skip
                  }
                }
                if (ts.peek() == "NEW") {
                  ts.next();
                  continue;  // next path (layer name follows)
                }
                break;
              }
              continue;
            }
            // Other `+ KEY ...` option: skip its tokens until next '+'/';'.
            while (ts.peek() != "+" && ts.peek() != ";") ts.next();
            continue;
          }
          ts.fail("unexpected token '" + t + "' in NET " + net.name);
        }
        nets.push_back(std::move(net));
      }
      ts.expect("END");
      ts.expect("NETS");
    } else if (tok == "END") {
      const std::string what = ts.next();
      if (what == "DESIGN") break;
      // stray END of an unknown section: ignore
    } else if (tok == "PROPERTYDEFINITIONS" || tok == "VIAS" ||
               tok == "NONDEFAULTRULES" || tok == "REGIONS" ||
               tok == "COMPONENTS" || tok == "PINS" || tok == "BLOCKAGES" ||
               tok == "SPECIALNETS" || tok == "GROUPS" || tok == "FILLS" ||
               tok == "TRACKS" || tok == "GCELLGRID" || tok == "ROWS") {
      // Sectioned constructs end with `END <name>`; single statements like
      // TRACKS/GCELLGRID/ROWS end with ';'.
      if (tok == "TRACKS" || tok == "GCELLGRID" || tok == "ROWS")
        ts.skip_statement();
      else
        ts.skip_section(tok);
    } else {
      ts.skip_statement();  // unknown statement: best effort
    }
  }

  PIL_REQUIRE(die.has_value(), "DEF has no DIEAREA");
  Layout layout(*die);
  for (const Layer& l : options.layers) layout.add_layer(l);

  for (const RawNet& raw : nets) {
    PIL_REQUIRE(raw.first_point.has_value(),
                "net '" + raw.name + "' has no routed wiring");
    // Leaf inference: endpoints used exactly once and interior to no other
    // segment become sinks; the first routed point is the driver.
    std::map<std::pair<long long, long long>, int> endpoint_count;
    auto key = [](const RawPoint& p) {
      return std::make_pair(static_cast<long long>(std::llround(p.x * 1e6)),
                            static_cast<long long>(std::llround(p.y * 1e6)));
    };
    for (const RawSegment& s : raw.segments) {
      endpoint_count[key(s.a)] += 1;
      endpoint_count[key(s.b)] += 1;
    }
    auto interior_to_some_segment = [&](const RawPoint& p) {
      for (const RawSegment& s : raw.segments) {
        const double lox = std::min(s.a.x, s.b.x), hix = std::max(s.a.x, s.b.x);
        const double loy = std::min(s.a.y, s.b.y), hiy = std::max(s.a.y, s.b.y);
        const bool on = (std::fabs(s.a.x - s.b.x) < 1e-9)
                            ? (std::fabs(p.x - s.a.x) < 1e-9 && p.y > loy + 1e-9 &&
                               p.y < hiy - 1e-9)
                            : (std::fabs(p.y - s.a.y) < 1e-9 && p.x > lox + 1e-9 &&
                               p.x < hix - 1e-9);
        if (on) return true;
      }
      return false;
    };

    Net net;
    net.name = raw.name;
    net.source = geom::Point{raw.first_point->x, raw.first_point->y};
    net.driver_res_ohm = options.default_driver_res_ohm;
    const auto source_key = key(*raw.first_point);
    for (const auto& [k, count] : endpoint_count) {
      if (count != 1 || k == source_key) continue;
      const RawPoint p{static_cast<double>(k.first) / 1e6,
                       static_cast<double>(k.second) / 1e6};
      if (interior_to_some_segment(p)) continue;
      net.sinks.push_back(
          SinkPin{geom::Point{p.x, p.y}, options.default_sink_cap_ff});
    }
    PIL_REQUIRE(!net.sinks.empty(),
                "net '" + raw.name + "': no sink could be inferred");
    const NetId nid = layout.add_net(std::move(net));

    for (const RawSegment& s : raw.segments) {
      const LayerId lid = layout.find_layer(s.layer);
      PIL_REQUIRE(lid != kInvalidLayer,
                  "net '" + raw.name + "' routed on unknown layer '" +
                      s.layer + "'");
      const double width = options.default_wire_width_um > 0
                               ? options.default_wire_width_um
                               : layout.layer(lid).default_wire_width_um;
      layout.add_segment(nid, lid, geom::Point{s.a.x, s.a.y},
                         geom::Point{s.b.x, s.b.y}, width);
    }
  }

  layout.validate();
  PIL_INFO("DEF '" << design_name << "': " << layout.num_nets() << " nets, "
                   << layout.num_segments() << " segments");
  return layout;
}

Layout read_def_file(const std::string& path, const DefReadOptions& options) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open DEF file: " + path);
  return read_def(in, options);
}

void write_def_fills(const Layout& layout, LayerId layer,
                     const std::vector<geom::Rect>& fill_features,
                     std::ostream& out, const std::string& design_name,
                     double dbu_per_um) {
  PIL_REQUIRE(dbu_per_um > 0, "dbu_per_um must be positive");
  const Layer& l = layout.layer(layer);  // validates the id
  auto dbu = [&](double v) { return std::llround(v * dbu_per_um); };
  const geom::Rect& die = layout.die();

  out << "VERSION 5.8 ;\n";
  out << "DESIGN " << design_name << " ;\n";
  out << "UNITS DISTANCE MICRONS " << static_cast<long long>(dbu_per_um)
      << " ;\n";
  out << "DIEAREA ( " << dbu(die.xlo) << ' ' << dbu(die.ylo) << " ) ( "
      << dbu(die.xhi) << ' ' << dbu(die.yhi) << " ) ;\n";
  out << "FILLS " << fill_features.size() << " ;\n";
  for (const geom::Rect& r : fill_features) {
    out << "- LAYER " << l.name << " RECT ( " << dbu(r.xlo) << ' '
        << dbu(r.ylo) << " ) ( " << dbu(r.xhi) << ' ' << dbu(r.yhi)
        << " ) ;\n";
  }
  out << "END FILLS\n";
  out << "END DESIGN\n";
}

void write_def_fills_file(const Layout& layout, LayerId layer,
                          const std::vector<geom::Rect>& fill_features,
                          const std::string& path,
                          const std::string& design_name, double dbu_per_um) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open DEF file for writing: " + path);
  write_def_fills(layout, layer, fill_features, out, design_name, dbu_per_um);
}

}  // namespace pil::layout
