#include "pil/layout/layout.hpp"

#include <algorithm>

namespace pil::layout {

LayerId Layout::add_layer(Layer layer) {
  PIL_REQUIRE(!layer.name.empty(), "layer needs a name");
  PIL_REQUIRE(find_layer(layer.name) == kInvalidLayer, "duplicate layer name");
  PIL_REQUIRE(layer.default_wire_width_um > 0 && layer.sheet_res_ohm_sq > 0 &&
                  layer.thickness_um > 0 && layer.eps_r > 0,
              "layer parameters must be positive");
  layers_.push_back(std::move(layer));
  return static_cast<LayerId>(layers_.size() - 1);
}

const Layer& Layout::layer(LayerId id) const {
  PIL_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < layers_.size(),
              "layer id out of range");
  return layers_[id];
}

LayerId Layout::find_layer(const std::string& name) const {
  for (std::size_t i = 0; i < layers_.size(); ++i)
    if (layers_[i].name == name) return static_cast<LayerId>(i);
  return kInvalidLayer;
}

NetId Layout::add_net(Net net) {
  PIL_REQUIRE(net.driver_res_ohm > 0, "driver resistance must be positive");
  PIL_REQUIRE(die_.contains(net.source), "net source outside die");
  for (const auto& s : net.sinks)
    PIL_REQUIRE(die_.contains(s.location), "net sink outside die");
  net.id = static_cast<NetId>(nets_.size());
  net.segments.clear();
  nets_.push_back(std::move(net));
  return nets_.back().id;
}

const Net& Layout::net(NetId id) const {
  PIL_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < nets_.size(),
              "net id out of range");
  return nets_[id];
}

Net& Layout::mutable_net(NetId id) {
  PIL_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < nets_.size(),
              "net id out of range");
  return nets_[id];
}

SegmentId Layout::add_segment(NetId netid, LayerId layerid, geom::Point p,
                              geom::Point q, double width_um) {
  PIL_REQUIRE(netid >= 0 && static_cast<std::size_t>(netid) < nets_.size(),
              "segment references unknown net");
  PIL_REQUIRE(layerid >= 0 && static_cast<std::size_t>(layerid) < layers_.size(),
              "segment references unknown layer");
  PIL_REQUIRE(width_um > 0, "segment width must be positive");
  const bool h = geom::nearly_equal(p.y, q.y);
  const bool v = geom::nearly_equal(p.x, q.x);
  PIL_REQUIRE(h || v, "segments must be axis-aligned");
  PIL_REQUIRE(die_.contains(p) && die_.contains(q),
              "segment endpoint outside die");

  WireSegment seg;
  seg.id = static_cast<SegmentId>(segments_.size());
  seg.net = netid;
  seg.layer = layerid;
  seg.width_um = width_um;
  // Canonical order: a <= b along the axis of the segment.
  if ((h && p.x <= q.x) || (!h && p.y <= q.y)) {
    seg.a = p;
    seg.b = q;
  } else {
    seg.a = q;
    seg.b = p;
  }
  segments_.push_back(seg);
  nets_[netid].segments.push_back(seg.id);
  return seg.id;
}

const WireSegment& Layout::segment(SegmentId id) const {
  PIL_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < segments_.size(),
              "segment id out of range");
  return segments_[id];
}

WireSegment& Layout::mutable_segment(SegmentId id) {
  PIL_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < segments_.size(),
              "segment id out of range");
  return segments_[id];
}

void Layout::remove_segment(SegmentId id) {
  WireSegment& seg = mutable_segment(id);
  PIL_REQUIRE(!seg.removed(), "segment already removed");
  auto& list = nets_[seg.net].segments;
  const auto it = std::find(list.begin(), list.end(), id);
  PIL_REQUIRE(it != list.end(), "segment missing from its net's list");
  list.erase(it);
  seg.net = kInvalidNet;
  seg.layer = kInvalidLayer;
}

void Layout::move_segment(SegmentId id, double dx, double dy) {
  WireSegment& seg = mutable_segment(id);
  PIL_REQUIRE(!seg.removed(), "cannot move a removed segment");
  const geom::Point a{seg.a.x + dx, seg.a.y + dy};
  const geom::Point b{seg.b.x + dx, seg.b.y + dy};
  PIL_REQUIRE(die_.contains(a) && die_.contains(b),
              "segment endpoint outside die");
  seg.a = a;
  seg.b = b;
}

std::vector<SegmentId> Layout::segments_on_layer(LayerId layerid) const {
  std::vector<SegmentId> out;
  for (const auto& s : segments_)
    if (s.layer == layerid) out.push_back(s.id);
  return out;
}

double Layout::total_wire_area(LayerId layerid) const {
  double area = 0.0;
  for (const auto& s : segments_)
    if (s.layer == layerid) area += s.rect().area();
  return area;
}

void Layout::add_blockage(LayerId layerid, const geom::Rect& rect,
                          bool is_metal) {
  PIL_REQUIRE(layerid >= 0 && static_cast<std::size_t>(layerid) < layers_.size(),
              "blockage references unknown layer");
  PIL_REQUIRE(!rect.empty() && rect.area() > 0, "blockage rect must have area");
  PIL_REQUIRE(die_.contains(rect), "blockage outside die");
  blockages_.push_back(Blockage{layerid, rect, is_metal});
}

std::vector<geom::Rect> Layout::blockages_on_layer(LayerId layerid) const {
  std::vector<geom::Rect> out;
  for (const auto& b : blockages_)
    if (b.layer == layerid) out.push_back(b.rect);
  return out;
}

void Layout::validate() const {
  PIL_REQUIRE(!die_.empty(), "empty die");
  for (const auto& s : segments_) {
    if (s.removed()) continue;
    PIL_REQUIRE(s.net >= 0 && static_cast<std::size_t>(s.net) < nets_.size(),
                "segment with dangling net id");
    PIL_REQUIRE(s.layer >= 0 &&
                    static_cast<std::size_t>(s.layer) < layers_.size(),
                "segment with dangling layer id");
    PIL_REQUIRE(die_.contains(s.a) && die_.contains(s.b),
                "segment endpoint outside die");
    const bool ordered = (s.orientation() == Orientation::kHorizontal)
                             ? s.a.x <= s.b.x
                             : s.a.y <= s.b.y;
    PIL_REQUIRE(ordered, "segment endpoints not canonical");
  }
  for (const auto& n : nets_) {
    for (const SegmentId sid : n.segments) {
      PIL_REQUIRE(sid >= 0 && static_cast<std::size_t>(sid) < segments_.size(),
                  "net references unknown segment");
      PIL_REQUIRE(segments_[sid].net == n.id, "net/segment id mismatch");
    }
  }
}

Layout transposed(const Layout& l) {
  auto flip = [](const geom::Point& p) { return geom::Point{p.y, p.x}; };
  const geom::Rect& d = l.die();
  Layout out(geom::Rect{d.ylo, d.xlo, d.yhi, d.xhi});
  for (std::size_t i = 0; i < l.num_layers(); ++i) {
    Layer layer = l.layer(static_cast<LayerId>(i));
    layer.preferred_direction =
        layer.preferred_direction == Orientation::kHorizontal
            ? Orientation::kVertical
            : Orientation::kHorizontal;
    out.add_layer(std::move(layer));
  }
  for (std::size_t i = 0; i < l.num_nets(); ++i) {
    const Net& src = l.net(static_cast<NetId>(i));
    Net net;
    net.name = src.name;
    net.source = flip(src.source);
    net.driver_res_ohm = src.driver_res_ohm;
    for (const SinkPin& s : src.sinks)
      net.sinks.push_back(SinkPin{flip(s.location), s.load_cap_ff});
    const NetId nid = out.add_net(std::move(net));
    for (const SegmentId sid : src.segments) {
      const WireSegment& seg = l.segment(sid);
      out.add_segment(nid, seg.layer, flip(seg.a), flip(seg.b), seg.width_um);
    }
  }
  for (const Blockage& b : l.blockages())
    out.add_blockage(b.layer,
                     geom::Rect{b.rect.ylo, b.rect.xlo, b.rect.yhi, b.rect.xhi},
                     b.is_metal);
  return out;
}

}  // namespace pil::layout
