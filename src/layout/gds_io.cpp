#include "pil/layout/gds_io.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "pil/util/log.hpp"

namespace pil::layout {

namespace {

// GDSII record types (record, datatype) used by this implementation.
enum RecordType : std::uint8_t {
  kHeader = 0x00,
  kBgnLib = 0x01,
  kLibName = 0x02,
  kUnits = 0x03,
  kEndLib = 0x04,
  kBgnStr = 0x05,
  kStrName = 0x06,
  kEndStr = 0x07,
  kBoundary = 0x08,
  kLayer = 0x0D,
  kDatatype = 0x0E,
  kXy = 0x10,
  kEndEl = 0x11,
};

enum DataType : std::uint8_t {
  kNoData = 0x00,
  kInt16 = 0x02,
  kInt32 = 0x03,
  kReal8 = 0x05,
  kAscii = 0x06,
};

// ---- encoding helpers ------------------------------------------------------

void put_u16(std::string& buf, std::uint16_t v) {
  buf.push_back(static_cast<char>(v >> 8));
  buf.push_back(static_cast<char>(v & 0xff));
}

void put_i32(std::string& buf, std::int32_t v) {
  const std::uint32_t u = static_cast<std::uint32_t>(v);
  buf.push_back(static_cast<char>(u >> 24));
  buf.push_back(static_cast<char>((u >> 16) & 0xff));
  buf.push_back(static_cast<char>((u >> 8) & 0xff));
  buf.push_back(static_cast<char>(u & 0xff));
}

/// GDSII 8-byte real: sign bit, 7-bit excess-64 base-16 exponent, 56-bit
/// mantissa with value = mantissa * 16^(exp-64), mantissa in [1/16, 1).
void put_real8(std::string& buf, double v) {
  std::uint64_t bits = 0;
  if (v != 0.0) {
    std::uint64_t sign = 0;
    if (v < 0) {
      sign = 1ull << 63;
      v = -v;
    }
    int exp16 = 0;
    while (v >= 1.0) {
      v /= 16.0;
      ++exp16;
    }
    while (v < 1.0 / 16.0) {
      v *= 16.0;
      --exp16;
    }
    const std::uint64_t mantissa =
        static_cast<std::uint64_t>(std::ldexp(v, 56));
    PIL_ASSERT(exp16 + 64 >= 0 && exp16 + 64 < 128, "real8 exponent overflow");
    bits = sign | (static_cast<std::uint64_t>(exp16 + 64) << 56) |
           (mantissa & 0x00ffffffffffffffull);
  }
  for (int i = 7; i >= 0; --i)
    buf.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
}

void emit(std::ostream& out, RecordType rec, DataType type,
          const std::string& payload) {
  PIL_REQUIRE(payload.size() + 4 <= 0xffff, "GDS record too long");
  PIL_REQUIRE(payload.size() % 2 == 0, "GDS payload must be even");
  std::string header;
  put_u16(header, static_cast<std::uint16_t>(payload.size() + 4));
  header.push_back(static_cast<char>(rec));
  header.push_back(static_cast<char>(type));
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

void emit_i16(std::ostream& out, RecordType rec, std::int16_t v) {
  std::string p;
  put_u16(p, static_cast<std::uint16_t>(v));
  emit(out, rec, kInt16, p);
}

void emit_ascii(std::ostream& out, RecordType rec, std::string s) {
  if (s.size() % 2) s.push_back('\0');
  emit(out, rec, kAscii, s);
}

void emit_boundary(std::ostream& out, int layer, int datatype,
                   const geom::Rect& r, double dbu) {
  emit(out, kBoundary, kNoData, {});
  emit_i16(out, kLayer, static_cast<std::int16_t>(layer));
  emit_i16(out, kDatatype, static_cast<std::int16_t>(datatype));
  std::string xy;
  const auto X = [&](double v) {
    return static_cast<std::int32_t>(std::llround(v * dbu));
  };
  // Closed ring, 5 points, counterclockwise from the lower-left corner.
  const std::int32_t x0 = X(r.xlo), y0 = X(r.ylo), x1 = X(r.xhi), y1 = X(r.yhi);
  for (const auto& [x, y] : {std::pair{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1},
                             {x0, y0}}) {
    put_i32(xy, x);
    put_i32(xy, y);
  }
  emit(out, kXy, kInt32, xy);
  emit(out, kEndEl, kNoData, {});
}

// ---- decoding helpers ------------------------------------------------------

struct Record {
  std::uint8_t rec = 0;
  std::uint8_t type = 0;
  std::string payload;
};

bool read_record(std::istream& in, Record& r) {
  char head[4];
  if (!in.read(head, 4)) return false;
  const std::uint16_t len =
      (static_cast<std::uint8_t>(head[0]) << 8) |
      static_cast<std::uint8_t>(head[1]);
  PIL_REQUIRE(len >= 4, "GDS record length below header size");
  r.rec = static_cast<std::uint8_t>(head[2]);
  r.type = static_cast<std::uint8_t>(head[3]);
  r.payload.resize(len - 4);
  if (len > 4)
    PIL_REQUIRE(static_cast<bool>(in.read(r.payload.data(), len - 4)),
                "truncated GDS record");
  return true;
}

std::int16_t get_i16(const std::string& p, std::size_t at) {
  PIL_REQUIRE(at + 2 <= p.size(), "GDS record underrun");
  return static_cast<std::int16_t>(
      (static_cast<std::uint8_t>(p[at]) << 8) |
      static_cast<std::uint8_t>(p[at + 1]));
}

std::int32_t get_i32(const std::string& p, std::size_t at) {
  PIL_REQUIRE(at + 4 <= p.size(), "GDS record underrun");
  return static_cast<std::int32_t>(
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[at])) << 24) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[at + 1])) << 16) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[at + 2])) << 8) |
      static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[at + 3])));
}

double get_real8(const std::string& p, std::size_t at) {
  PIL_REQUIRE(at + 8 <= p.size(), "GDS record underrun");
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i)
    bits = (bits << 8) | static_cast<std::uint8_t>(p[at + i]);
  if (bits == 0) return 0.0;
  const double sign = (bits >> 63) ? -1.0 : 1.0;
  const int exp16 = static_cast<int>((bits >> 56) & 0x7f) - 64;
  const double mantissa =
      std::ldexp(static_cast<double>(bits & 0x00ffffffffffffffull), -56);
  return sign * mantissa * std::pow(16.0, exp16);
}

std::string get_ascii(const std::string& p) {
  std::string s = p;
  while (!s.empty() && s.back() == '\0') s.pop_back();
  return s;
}

}  // namespace

void write_gds(const Layout& layout,
               const std::vector<geom::Rect>& fill_features, std::ostream& out,
               const GdsWriteOptions& options) {
  PIL_REQUIRE(options.dbu_per_um > 0, "dbu_per_um must be positive");
  if (!options.layer_numbers.empty())
    PIL_REQUIRE(options.layer_numbers.size() == layout.num_layers(),
                "layer_numbers must cover every layout layer");
  auto gds_layer = [&](LayerId id) {
    return options.layer_numbers.empty() ? id + 1 : options.layer_numbers[id];
  };

  emit_i16(out, kHeader, 600);  // GDSII release 6
  {
    // Creation/modification timestamps: fixed (determinism beats realism).
    std::string p;
    for (int i = 0; i < 12; ++i) put_u16(p, 0);
    emit(out, kBgnLib, kInt16, p);
  }
  emit_ascii(out, kLibName, options.library_name);
  {
    // UNITS: user units per dbu, meters per dbu.
    std::string p;
    put_real8(p, 1.0 / options.dbu_per_um);
    put_real8(p, 1e-6 / options.dbu_per_um);
    emit(out, kUnits, kReal8, p);
  }
  {
    std::string p;
    for (int i = 0; i < 12; ++i) put_u16(p, 0);
    emit(out, kBgnStr, kInt16, p);
  }
  emit_ascii(out, kStrName, options.cell_name);

  for (const WireSegment& seg : layout.segments())
    if (!seg.removed())
      emit_boundary(out, gds_layer(seg.layer), options.wire_datatype,
                    seg.rect(), options.dbu_per_um);
  for (const geom::Rect& r : fill_features)
    emit_boundary(out, options.fill_layer, options.fill_datatype, r,
                  options.dbu_per_um);

  emit(out, kEndStr, kNoData, {});
  emit(out, kEndLib, kNoData, {});
}

void write_gds_file(const Layout& layout,
                    const std::vector<geom::Rect>& fill_features,
                    const std::string& path, const GdsWriteOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open GDS file for writing: " + path);
  write_gds(layout, fill_features, out, options);
}

GdsContents read_gds(std::istream& in) {
  GdsContents contents;
  Record r;
  bool saw_header = false;
  double um_per_dbu = 1e-3;
  int cur_layer = 0, cur_datatype = 0;
  bool in_boundary = false;

  while (read_record(in, r)) {
    switch (r.rec) {
      case kHeader:
        saw_header = true;
        break;
      case kLibName:
        contents.library_name = get_ascii(r.payload);
        break;
      case kUnits: {
        PIL_REQUIRE(r.payload.size() == 16, "UNITS needs two real8 values");
        const double meters_per_dbu = get_real8(r.payload, 8);
        PIL_REQUIRE(meters_per_dbu > 0, "bad UNITS record");
        um_per_dbu = meters_per_dbu * 1e6;
        contents.dbu_per_um = 1.0 / um_per_dbu;
        break;
      }
      case kStrName:
        if (contents.cell_name.empty())
          contents.cell_name = get_ascii(r.payload);
        break;
      case kBoundary:
        in_boundary = true;
        break;
      case kLayer:
        cur_layer = get_i16(r.payload, 0);
        break;
      case kDatatype:
        cur_datatype = get_i16(r.payload, 0);
        break;
      case kXy: {
        if (!in_boundary) break;
        PIL_REQUIRE(r.payload.size() == 5 * 8,
                    "only rectangular 5-point boundaries are supported");
        double xs[5], ys[5];
        for (int i = 0; i < 5; ++i) {
          xs[i] = get_i32(r.payload, i * 8) * um_per_dbu;
          ys[i] = get_i32(r.payload, i * 8 + 4) * um_per_dbu;
        }
        PIL_REQUIRE(xs[0] == xs[4] && ys[0] == ys[4],
                    "boundary ring is not closed");
        GdsRect rect;
        rect.layer = cur_layer;
        rect.datatype = cur_datatype;
        rect.rect = geom::Rect{std::min(xs[0], xs[2]), std::min(ys[0], ys[2]),
                               std::max(xs[0], xs[2]), std::max(ys[0], ys[2])};
        // Verify rectangularity: the ring's corners must match the bbox.
        for (int i = 0; i < 4; ++i)
          PIL_REQUIRE((xs[i] == rect.rect.xlo || xs[i] == rect.rect.xhi) &&
                          (ys[i] == rect.rect.ylo || ys[i] == rect.rect.yhi),
                      "boundary is not an axis-aligned rectangle");
        contents.rects.push_back(rect);
        break;
      }
      case kEndEl:
        in_boundary = false;
        break;
      case kEndLib:
        PIL_REQUIRE(saw_header, "GDS stream missing HEADER");
        return contents;
      default:
        break;  // skip everything else
    }
  }
  throw Error("GDS stream ended without ENDLIB");
}

GdsContents read_gds_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open GDS file: " + path);
  return read_gds(in);
}

}  // namespace pil::layout
