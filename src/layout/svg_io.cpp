#include "pil/layout/svg_io.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>

#include "pil/util/strings.hpp"

namespace pil::layout {

namespace {

/// Stable per-net hue: golden-angle spacing gives adjacent ids distinct
/// colors without a palette table.
std::string net_color(NetId id) {
  const int hue = static_cast<int>((static_cast<unsigned>(id) * 137u) % 360u);
  return "hsl(" + std::to_string(hue) + ", 70%, 45%)";
}

}  // namespace

void write_svg(const Layout& layout,
               const std::vector<geom::Rect>& fill_features, std::ostream& out,
               const SvgOptions& options) {
  PIL_REQUIRE(options.scale > 0, "SVG scale must be positive");
  const geom::Rect& die = layout.die();
  const double w = die.width() * options.scale;
  const double h = die.height() * options.scale;
  // Flip y so the SVG matches layout coordinates (origin bottom-left).
  auto px = [&](double x) { return (x - die.xlo) * options.scale; };
  auto py = [&](double y) { return h - (y - die.ylo) * options.scale; };

  out << std::setprecision(8);
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w
      << "\" height=\"" << h << "\" viewBox=\"0 0 " << w << ' ' << h
      << "\">\n";
  out << "  <rect x=\"0\" y=\"0\" width=\"" << w << "\" height=\"" << h
      << "\" fill=\"" << options.background << "\"/>\n";

  if (options.grid_um > 0) {
    out << "  <g stroke=\"#e5e7eb\" stroke-width=\"1\">\n";
    for (double x = die.xlo + options.grid_um; x < die.xhi;
         x += options.grid_um)
      out << "    <line x1=\"" << px(x) << "\" y1=\"0\" x2=\"" << px(x)
          << "\" y2=\"" << h << "\"/>\n";
    for (double y = die.ylo + options.grid_um; y < die.yhi;
         y += options.grid_um)
      out << "    <line x1=\"0\" y1=\"" << py(y) << "\" x2=\"" << w
          << "\" y2=\"" << py(y) << "\"/>\n";
    out << "  </g>\n";
  }

  out << "  <g opacity=\"" << options.wire_opacity << "\">\n";
  for (const WireSegment& seg : layout.segments()) {
    if (seg.removed()) continue;
    const geom::Rect r = seg.rect();
    out << "    <rect x=\"" << px(r.xlo) << "\" y=\"" << py(r.yhi)
        << "\" width=\"" << r.width() * options.scale << "\" height=\""
        << r.height() * options.scale << "\" fill=\""
        << (options.color_by_net ? net_color(seg.net) : options.wire_color)
        << "\"/>\n";
  }
  out << "  </g>\n";

  if (!fill_features.empty()) {
    out << "  <g opacity=\"" << options.fill_opacity << "\" fill=\""
        << options.fill_color << "\">\n";
    for (const geom::Rect& r : fill_features) {
      out << "    <rect x=\"" << px(r.xlo) << "\" y=\"" << py(r.yhi)
          << "\" width=\"" << r.width() * options.scale << "\" height=\""
          << r.height() * options.scale << "\"/>\n";
    }
    out << "  </g>\n";
  }
  out << "</svg>\n";
}

void write_svg_file(const Layout& layout,
                    const std::vector<geom::Rect>& fill_features,
                    const std::string& path, const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open SVG file for writing: " + path);
  write_svg(layout, fill_features, out, options);
}

}  // namespace pil::layout
