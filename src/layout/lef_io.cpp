#include "pil/layout/lef_io.hpp"

#include <fstream>
#include <istream>
#include <sstream>

#include "pil/util/log.hpp"
#include "pil/util/strings.hpp"

namespace pil::layout {

namespace {

std::vector<std::string> tokenize(std::istream& in) {
  std::vector<std::string> tokens;
  std::string line;
  while (std::getline(in, line)) {
    // LEF comments: '#' to end of line.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    for (auto& t : split_ws(line)) tokens.push_back(std::move(t));
  }
  return tokens;
}

}  // namespace

std::vector<Layer> read_lef(std::istream& in, const LefReadOptions& options) {
  const std::vector<std::string> tokens = tokenize(in);
  std::vector<Layer> layers;

  std::size_t i = 0;
  auto next = [&]() -> const std::string& {
    PIL_REQUIRE(i < tokens.size(), "unexpected end of LEF file");
    return tokens[i++];
  };
  auto skip_statement = [&] {
    while (next() != ";") {
    }
  };

  while (i < tokens.size()) {
    const std::string tok = next();
    if (tok == "LAYER") {
      Layer layer;
      layer.name = next();
      layer.default_wire_width_um = 0.0;  // must come from a WIDTH statement
      layer.eps_r = options.default_eps_r;
      layer.thickness_um = options.default_thickness_um;
      layer.sheet_res_ohm_sq = options.default_sheet_res_ohm_sq;
      bool routing = false;
      while (true) {
        const std::string stmt = next();
        if (stmt == "END") {
          const std::string name = next();
          PIL_REQUIRE(name == layer.name,
                      "LAYER/END name mismatch: " + layer.name + " vs " + name);
          break;
        }
        if (stmt == "TYPE") {
          routing = next() == "ROUTING";
          next();  // ';'
        } else if (stmt == "DIRECTION") {
          const std::string dir = next();
          layer.preferred_direction = (dir == "VERTICAL")
                                          ? Orientation::kVertical
                                          : Orientation::kHorizontal;
          next();  // ';'
        } else if (stmt == "WIDTH") {
          layer.default_wire_width_um = parse_double(next(), "LAYER WIDTH");
          next();
        } else if (stmt == "THICKNESS") {
          layer.thickness_um = parse_double(next(), "LAYER THICKNESS");
          next();
        } else if (stmt == "RESISTANCE") {
          const std::string kind = next();
          if (kind == "RPERSQ") {
            layer.sheet_res_ohm_sq = parse_double(next(), "RPERSQ");
            next();
          } else {
            // e.g. via RESISTANCE <value> ; -- skip the remainder.
            while (next() != ";") {
            }
          }
        } else {
          // PITCH / SPACING / EDGECAPACITANCE / AREA / properties: skip.
          while (next() != ";") {
          }
        }
      }
      if (routing) {
        PIL_REQUIRE(layer.default_wire_width_um > 0,
                    "routing layer '" + layer.name + "' has no WIDTH");
        layers.push_back(std::move(layer));
      }
    } else if (tok == "END") {
      if (i < tokens.size() && tokens[i] == "LIBRARY") break;
      // END of a skipped construct (VIA, SITE, ...): consume the name.
      if (i < tokens.size()) ++i;
    } else if (tok == "VIA" || tok == "VIARULE" || tok == "SITE" ||
               tok == "MACRO" || tok == "SPACING" ||
               tok == "PROPERTYDEFINITIONS" || tok == "UNITS") {
      // Block constructs: skip to END <name> (UNITS/SPACING/PROPDEFS use
      // END <keyword>).
      const std::string name =
          (tok == "UNITS" || tok == "SPACING" || tok == "PROPERTYDEFINITIONS")
              ? tok
              : next();
      while (true) {
        const std::string t = next();
        if (t == "END" && i < tokens.size() && tokens[i] == name) {
          ++i;
          break;
        }
      }
    } else {
      // VERSION / NAMESCASESENSITIVE / MANUFACTURINGGRID / ...: one stmt.
      skip_statement();
    }
  }

  PIL_INFO("LEF: " << layers.size() << " routing layers");
  return layers;
}

std::vector<Layer> read_lef_file(const std::string& path,
                                 const LefReadOptions& options) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open LEF file: " + path);
  return read_lef(in, options);
}

}  // namespace pil::layout
