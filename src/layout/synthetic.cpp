#include "pil/layout/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "pil/geom/interval.hpp"
#include "pil/util/log.hpp"

namespace pil::layout {

namespace {

/// Track-grid occupancy for one routing direction. Tracks are indexed from 0
/// at coordinate pitch*(i+0.5); each track holds the set of occupied extents
/// along the track (drawn extent inflated by spacing, so a simple overlap
/// test enforces min spacing between co-track wires).
class TrackOccupancy {
 public:
  TrackOccupancy(int num_tracks, double pitch)
      : pitch_(pitch), used_(num_tracks) {}

  int num_tracks() const { return static_cast<int>(used_.size()); }
  double track_coord(int t) const { return pitch_ * (t + 0.5); }

  /// Track index whose coordinate equals `coord` (must be on-grid).
  int track_at(double coord) const {
    const int t = static_cast<int>(std::lround(coord / pitch_ - 0.5));
    PIL_ASSERT(t >= 0 && t < num_tracks(), "off-grid track coordinate");
    PIL_ASSERT(geom::nearly_equal(track_coord(t), coord, 1e-6),
               "coordinate not on track grid");
    return t;
  }

  /// Free iff no occupied extent strictly overlaps [lo, hi].
  bool is_free(int t, double lo, double hi) const {
    for (const auto& iv : used_[t].intervals()) {
      if (iv.lo >= hi) break;
      if (iv.hi > lo) return false;
    }
    return true;
  }

  void occupy(int t, double lo, double hi) { used_[t].insert(lo, hi); }

 private:
  double pitch_;
  std::vector<geom::IntervalSet> used_;
};

}  // namespace

Layout generate_synthetic_layout(const SyntheticLayoutConfig& cfg,
                                 GeneratorStats* stats_out) {
  PIL_REQUIRE(cfg.die_um > 0 && cfg.track_pitch_um > 0, "bad die/pitch");
  PIL_REQUIRE(cfg.wire_width_um > 0 &&
                  cfg.wire_width_um + cfg.min_spacing_um <= cfg.track_pitch_um,
              "wires must fit on the track grid with spacing");
  PIL_REQUIRE(cfg.min_sinks >= 1 && cfg.max_sinks >= cfg.min_sinks,
              "bad sink count range");
  PIL_REQUIRE(cfg.min_trunk_um > 0 && cfg.max_trunk_um >= cfg.min_trunk_um,
              "bad trunk length range");
  PIL_REQUIRE(cfg.max_branch_tracks >= 1, "need at least 1 branch track");

  Rng rng(cfg.seed);
  Layout out(geom::Rect{0, 0, cfg.die_um, cfg.die_um});

  Layer layer;
  layer.name = "m3";
  layer.preferred_direction = Orientation::kHorizontal;
  layer.default_wire_width_um = cfg.wire_width_um;
  layer.sheet_res_ohm_sq = cfg.sheet_res_ohm_sq;
  layer.thickness_um = cfg.thickness_um;
  layer.eps_r = cfg.eps_r;
  const LayerId lid = out.add_layer(layer);
  LayerId branch_lid = lid;
  if (cfg.separate_branch_layer) {
    Layer m4 = layer;
    m4.name = "m4";
    m4.preferred_direction = Orientation::kVertical;
    branch_lid = out.add_layer(m4);
  }

  const double pitch = cfg.track_pitch_um;
  const int tracks = static_cast<int>(std::floor(cfg.die_um / pitch));
  PIL_REQUIRE(tracks >= 4, "die too small for track grid");
  TrackOccupancy hocc(tracks, pitch);  // horizontal tracks: y = pitch*(t+.5)
  TrackOccupancy vocc(tracks, pitch);  // vertical tracks:   x = pitch*(t+.5)

  // Drawn extent inflated by half the min spacing on each side, so that two
  // occupied extents that do not overlap are at least min_spacing apart.
  const double clr = cfg.min_spacing_um / 2 + cfg.wire_width_um / 2;
  const double dense_hi_x = cfg.die_um * cfg.dense_region_fraction;

  GeneratorStats stats;

  // Macro blockages first: they own their tracks outright, so nets placed
  // below simply route around them.
  for (int m = 0; m < cfg.num_macros; ++m) {
    for (int attempt = 0; attempt < 32; ++attempt) {
      const double w = pitch * std::round(rng.uniform_real(cfg.macro_min_um,
                                                           cfg.macro_max_um) /
                                          pitch);
      const double h = pitch * std::round(rng.uniform_real(cfg.macro_min_um,
                                                           cfg.macro_max_um) /
                                          pitch);
      const double x0 =
          pitch * std::round(rng.uniform_real(pitch, cfg.die_um - w - pitch) /
                             pitch);
      const double y0 =
          pitch * std::round(rng.uniform_real(pitch, cfg.die_um - h - pitch) /
                             pitch);
      const geom::Rect rect{x0, y0, x0 + w, y0 + h};
      bool clear = true;
      for (const auto& b : out.blockages())
        if (geom::overlaps_strictly(b.rect.inflated(pitch), rect)) {
          clear = false;
          break;
        }
      if (!clear) continue;
      out.add_blockage(lid, rect, /*is_metal=*/true);
      if (cfg.separate_branch_layer) out.add_blockage(branch_lid, rect, true);
      // Claim the covered tracks (inflated by clearance) in both grids.
      const int t0 = std::max(0, static_cast<int>((y0 - clr) / pitch - 0.5));
      const int t1 = std::min(tracks - 1,
                              static_cast<int>((y0 + h + clr) / pitch - 0.5) + 1);
      for (int t = t0; t <= t1; ++t) {
        const double ty = hocc.track_coord(t);
        if (ty > y0 - clr && ty < y0 + h + clr)
          hocc.occupy(t, x0 - clr, x0 + w + clr);
      }
      const int v0 = std::max(0, static_cast<int>((x0 - clr) / pitch - 0.5));
      const int v1 = std::min(tracks - 1,
                              static_cast<int>((x0 + w + clr) / pitch - 0.5) + 1);
      for (int v = v0; v <= v1; ++v) {
        const double vx = vocc.track_coord(v);
        if (vx > x0 - clr && vx < x0 + w + clr)
          vocc.occupy(v, y0 - clr, y0 + h + clr);
      }
      break;
    }
  }

  // A horizontal wire on track `t` spanning [xlo, xhi] must be clear of
  // co-track wires AND -- when branches share the layer -- of foreign
  // vertical branches crossing its y (cross-layer crossings are legal).
  auto hwire_free = [&](int t, double xlo, double xhi, int ignore_vt = -1) {
    if (!hocc.is_free(t, xlo - clr, xhi + clr)) return false;
    if (cfg.separate_branch_layer) return true;
    const double y = hocc.track_coord(t);
    const int vlo = std::max(
        0, static_cast<int>(std::floor((xlo - clr) / pitch - 0.5)));
    const int vhi = std::min(
        tracks - 1, static_cast<int>(std::ceil((xhi + clr) / pitch - 0.5)));
    for (int vt = vlo; vt <= vhi; ++vt) {
      if (vt == ignore_vt) continue;  // own junction, crossing intended
      const double vx = vocc.track_coord(vt);
      if (vx < xlo - clr || vx > xhi + clr) continue;
      if (!vocc.is_free(vt, y - clr, y + clr)) return false;
    }
    return true;
  };

  // A candidate segment whose endpoint lands on an existing segment of the
  // SAME net -- or over whose interior an existing same-net endpoint lies --
  // at any point other than the intended tap would close an electrical loop.
  // (Only possible in two-layer mode, where cross-layer crossings are
  // legal; same-layer mode already rejects these via occupancy.)
  auto on_centerline = [](const WireSegment& s, const geom::Point& p) {
    if (s.orientation() == Orientation::kHorizontal)
      return geom::nearly_equal(p.y, s.a.y, 1e-9) && p.x >= s.a.x - 1e-9 &&
             p.x <= s.b.x + 1e-9;
    return geom::nearly_equal(p.x, s.a.x, 1e-9) && p.y >= s.a.y - 1e-9 &&
           p.y <= s.b.y + 1e-9;
  };
  auto own_net_loop_risk = [&](NetId nid, const geom::Point& cand_a,
                               const geom::Point& cand_b,
                               const geom::Point& tap) {
    auto is_tap = [&](const geom::Point& p) {
      return geom::nearly_equal(p.x, tap.x, 1e-9) &&
             geom::nearly_equal(p.y, tap.y, 1e-9);
    };
    WireSegment cand;
    cand.net = nid;
    cand.width_um = cfg.wire_width_um;
    const bool cand_h = geom::nearly_equal(cand_a.y, cand_b.y);
    if ((cand_h && cand_a.x <= cand_b.x) || (!cand_h && cand_a.y <= cand_b.y)) {
      cand.a = cand_a;
      cand.b = cand_b;
    } else {
      cand.a = cand_b;
      cand.b = cand_a;
    }
    for (const SegmentId sid : out.net(nid).segments) {
      const WireSegment& s = out.segment(sid);
      for (const geom::Point& p : {cand_a, cand_b})
        if (!is_tap(p) && on_centerline(s, p)) return true;
      for (const geom::Point& p : {s.a, s.b})
        if (!is_tap(p) && on_centerline(cand, p)) return true;
    }
    return false;
  };

  for (int netno = 0; netno < cfg.num_nets; ++netno) {
    // --- Trunk placement (with retries) ---------------------------------
    bool placed = false;
    int trunk_track = 0;
    double x0 = 0, x1 = 0;
    for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
      const bool dense = rng.bernoulli(cfg.dense_net_fraction);
      const double region_lo = dense ? 0.0 : dense_hi_x;
      const double region_hi = dense ? dense_hi_x : cfg.die_um;
      // Clamp the trunk length to the region so long nets stay where they
      // were seeded (otherwise they would all spill into the other region
      // and flatten the intended density gradient).
      const double max_len =
          std::min(cfg.max_trunk_um, region_hi - region_lo - 2 * clr - pitch);
      if (max_len < cfg.min_trunk_um) continue;
      const double len = rng.uniform_real(cfg.min_trunk_um, max_len);
      // Snap trunk endpoints to the vertical track grid so that branches
      // (which live on vertical tracks) can tap anywhere along the trunk.
      const double raw_x0 =
          rng.uniform_real(region_lo + clr, region_hi - len - clr);
      x0 = pitch * (std::floor(raw_x0 / pitch - 0.5) + 0.5);
      if (x0 < clr) x0 = pitch * 0.5;
      x1 = x0 + pitch * std::round(len / pitch);
      if (x1 > cfg.die_um - clr || x1 <= x0) continue;
      trunk_track = static_cast<int>(rng.uniform_int(0, tracks - 1));
      if (hwire_free(trunk_track, x0, x1)) placed = true;
    }
    if (!placed) {
      ++stats.nets_skipped;
      continue;
    }
    const double ty = hocc.track_coord(trunk_track);
    hocc.occupy(trunk_track, x0 - clr, x1 + clr);

    Net net;
    net.name = "n" + std::to_string(out.num_nets());
    net.source = geom::Point{x0, ty};
    net.driver_res_ohm =
        rng.uniform_real(cfg.driver_res_min_ohm, cfg.driver_res_max_ohm);
    const NetId nid = out.add_net(std::move(net));
    out.add_segment(nid, lid, geom::Point{x0, ty}, geom::Point{x1, ty},
                    cfg.wire_width_um);
    ++stats.segments;

    // --- Sinks via vertical branches ------------------------------------
    const int want_sinks =
        static_cast<int>(rng.uniform_int(cfg.min_sinks, cfg.max_sinks));
    int made_sinks = 0;
    for (int s = 0; s < want_sinks; ++s) {
      bool branch_done = false;
      for (int attempt = 0; attempt < 16 && !branch_done; ++attempt) {
        // Tap point on a vertical track strictly inside the trunk span.
        const int vtlo = static_cast<int>(std::ceil(x0 / pitch - 0.5)) + 1;
        const int vthi = static_cast<int>(std::floor(x1 / pitch - 0.5)) - 1;
        if (vthi < vtlo) break;
        const int vt = static_cast<int>(rng.uniform_int(vtlo, vthi));
        const double bx = vocc.track_coord(vt);
        const int dir = rng.bernoulli(0.5) ? 1 : -1;
        const int span = static_cast<int>(
            rng.uniform_int(1, cfg.max_branch_tracks));
        const double by = ty + dir * span * pitch;
        if (by < clr || by > cfg.die_um - clr) continue;
        const double ylo = std::min(ty, by), yhi = std::max(ty, by);
        if (!vocc.is_free(vt, ylo - clr, yhi + clr)) continue;
        // Same-layer branches must not cross foreign horizontal tracks
        // between trunk and tip (the trunk's own track is excluded: the tap
        // junction is intended). On a separate layer crossings are legal.
        if (!cfg.separate_branch_layer) {
          bool blocked = false;
          const int t0 = trunk_track + dir;
          const int t1 = trunk_track + dir * span;
          for (int t = std::min(t0, t1); t <= std::max(t0, t1); ++t) {
            if (t < 0 || t >= tracks) { blocked = true; break; }
            if (!hocc.is_free(t, bx - clr, bx + clr)) { blocked = true; break; }
          }
          if (blocked) continue;
        } else if (trunk_track + dir * span < 0 ||
                   trunk_track + dir * span >= tracks) {
          continue;  // tip must stay on the track grid for stubs
        }
        if (own_net_loop_risk(nid, geom::Point{bx, ty}, geom::Point{bx, by},
                              geom::Point{bx, ty}))
          continue;
        vocc.occupy(vt, ylo - clr, yhi + clr);
        out.add_segment(nid, branch_lid, geom::Point{bx, ty},
                        geom::Point{bx, by}, cfg.wire_width_um);
        ++stats.segments;

        // Optional horizontal stub at the branch tip; the sink sits at the
        // stub end (or the branch tip when no stub fits).
        geom::Point sink_at{bx, by};
        if (rng.bernoulli(cfg.stub_probability)) {
          const int stub_tracks = std::max(
              1, static_cast<int>(std::round(cfg.max_stub_um / pitch)));
          const int stub_span =
              static_cast<int>(rng.uniform_int(1, stub_tracks));
          const int sdir = rng.bernoulli(0.5) ? 1 : -1;
          const double sx = bx + sdir * stub_span * pitch;
          const int stub_track = trunk_track + dir * span;
          if (sx > clr && sx < cfg.die_um - clr && stub_track >= 0 &&
              stub_track < tracks) {
            const double slo = std::min(bx, sx), shi = std::max(bx, sx);
            if (hwire_free(stub_track, slo, shi, vt) &&
                !own_net_loop_risk(nid, geom::Point{bx, by},
                                   geom::Point{sx, by},
                                   geom::Point{bx, by})) {
              hocc.occupy(stub_track, slo - clr, shi + clr);
              out.add_segment(nid, lid, geom::Point{bx, by},
                              geom::Point{sx, by}, cfg.wire_width_um);
              ++stats.segments;
              sink_at = geom::Point{sx, by};
            }
          }
        }
        SinkPin sink;
        sink.location = sink_at;
        sink.load_cap_ff =
            rng.uniform_real(cfg.sink_cap_min_ff, cfg.sink_cap_max_ff);
        out.mutable_net(nid).sinks.push_back(sink);
        ++stats.sinks;
        ++made_sinks;
        branch_done = true;
      }
    }
    // Every net must drive at least one sink; fall back to the trunk end.
    if (made_sinks == 0) {
      SinkPin sink;
      sink.location = geom::Point{x1, ty};
      sink.load_cap_ff =
          rng.uniform_real(cfg.sink_cap_min_ff, cfg.sink_cap_max_ff);
      out.mutable_net(nid).sinks.push_back(sink);
      ++stats.sinks;
    }
    ++stats.nets_placed;
  }

  out.validate();
  PIL_INFO("synthetic layout: " << stats.nets_placed << " nets ("
                                << stats.nets_skipped << " skipped), "
                                << stats.segments << " segments, "
                                << stats.sinks << " sinks");
  if (stats_out) *stats_out = stats;
  return out;
}

SyntheticLayoutConfig testcase_t1_config() {
  SyntheticLayoutConfig cfg;
  cfg.die_um = 512.0;
  cfg.num_nets = 2200;
  cfg.max_trunk_um = 128.0;
  cfg.seed = 20030601;  // fixed: testcases are part of the experiment spec
  return cfg;
}

SyntheticLayoutConfig testcase_t2_config() {
  SyntheticLayoutConfig cfg;
  cfg.die_um = 128.0;
  cfg.num_nets = 150;
  cfg.min_trunk_um = 10.0;
  cfg.max_trunk_um = 60.0;
  cfg.dense_net_fraction = 0.6;
  cfg.seed = 20030602;
  return cfg;
}

Layout make_testcase_t1() { return generate_synthetic_layout(testcase_t1_config()); }
Layout make_testcase_t2() { return generate_synthetic_layout(testcase_t2_config()); }

}  // namespace pil::layout
